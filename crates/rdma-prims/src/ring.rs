//! The RDMA ring buffer (§3.2 of the paper).
//!
//! A single-sender byte ring mirrored into each receiver's registered memory
//! with one-sided writes. The sender frames messages as
//! `[len+1: u32][seq: u64][payload]`; the receiver polls its local copy and
//! drains every complete frame it finds — receiver-side batching. The
//! receiver zeroes bytes as it consumes them (the standard trick in FaRM-style
//! rings), so any nonzero length field it reads is a freshly written frame;
//! the sequence number is kept as a defensive check.
//!
//! Two framings model the §4.1 bandwidth comparison:
//!
//! * [`RingMode::Coupled`] (Acuerdo): metadata and data travel in **one**
//!   RDMA write — for small messages the wire cost is a single
//!   minimum-sized (80-byte) packet.
//! * [`RingMode::Split`] (Derecho): the data frame is written first, then a
//!   separate 8-byte message counter at a fixed offset — **two** writes, and
//!   twice the wire cost for small messages.
//!
//! Flow control is the protocol's job: the sender exposes [`RingSender::ack`]
//! so the protocol can mark frames reusable (Acuerdo reuses a slot once the
//! receiver *accepted* the message; Derecho only once it committed at all
//! active nodes — that difference is an ablation in `bench`). Safety relies
//! on the invariant that a protocol only acknowledges frames the receiver has
//! already consumed from the ring, so the sender never overwrites unread
//! bytes and the receiver never zeroes bytes the sender has rewritten.

use bytes::Bytes;
use rdma_sim::{Endpoint, PostError, RdmaPkt, RegionId};
use simnet::{Counter, Ctx, MsgKind, NodeId};
use std::collections::VecDeque;

/// Bytes of framing prepended to every payload: 4-byte length + 8-byte seq.
pub const FRAME_HDR: u64 = 12;
/// Length-field sentinel marking "skip to the start of the ring".
const WRAP: u32 = u32::MAX;
/// Size of the split-mode message counter stored past the data area.
const COUNTER_LEN: u64 = 8;

/// How frames are published to the receiver.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RingMode {
    /// One write carrying framing and payload together (Acuerdo).
    Coupled,
    /// One write for the frame plus one write for a message counter
    /// (Derecho). The receiver trusts the counter instead of the length
    /// field.
    Split,
}

/// Why a ring send failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RingError {
    /// Not enough reusable space in the receiver's ring; the protocol must
    /// wait for acknowledgments (backpressure — this produces the latency
    /// knee at saturation).
    Full,
    /// Payload cannot ever fit: frames must be at most half the ring, so a
    /// wrapped frame can never collide with the wrap marker it skipped.
    TooLarge,
    /// The underlying RDMA post failed.
    Post(PostError),
}

struct Lane {
    /// Region id the frames of this lane are written into at the receiver.
    /// Starts at the sender's canonical region and is retargeted when the
    /// receiver re-registers a fresh ring after a resynchronization.
    region: RegionId,
    head_abs: u64,
    next_seq: u64,
    acked_abs: u64,
    /// (seq, end_abs) of in-flight frames, oldest first.
    pending: VecDeque<(u64, u64)>,
}

/// Sender half: one lane per receiver, each mirroring into the same region id
/// at that receiver (until a lane is retargeted after a resync).
pub struct RingSender {
    cap: u64,
    mode: RingMode,
    /// Lanes indexed by receiver id (dense node ids; flat table beats
    /// hashing on the per-frame hot path).
    lanes: Vec<Option<Lane>>,
    /// Total frames sent across all lanes (stats).
    pub frames_sent: u64,
}

impl RingSender {
    /// Create a sender mirroring into `region` (of `region_len` bytes) at
    /// each receiver. In split mode the final 8 bytes hold the counter.
    pub fn new(region: RegionId, region_len: usize, mode: RingMode, receivers: &[NodeId]) -> Self {
        let cap = match mode {
            RingMode::Coupled => region_len as u64,
            RingMode::Split => region_len as u64 - COUNTER_LEN,
        };
        assert!(cap > FRAME_HDR, "ring too small");
        let mut lanes: Vec<Option<Lane>> = Vec::new();
        for &r in receivers {
            if r >= lanes.len() {
                lanes.resize_with(r + 1, || None);
            }
            lanes[r] = Some(Lane {
                region,
                head_abs: 0,
                next_seq: 0,
                acked_abs: 0,
                pending: VecDeque::new(),
            });
        }
        RingSender {
            cap,
            mode,
            lanes,
            frames_sent: 0,
        }
    }

    /// The transport sequence number the next frame to `dst` will carry.
    pub fn next_seq(&self, dst: NodeId) -> u64 {
        self.lane(dst).next_seq
    }

    #[inline]
    fn lane(&self, dst: NodeId) -> &Lane {
        self.lanes[dst].as_ref().expect("unknown lane")
    }

    #[inline]
    fn lane_mut(&mut self, dst: NodeId) -> &mut Lane {
        self.lanes[dst].as_mut().expect("unknown lane")
    }

    /// Reusable bytes remaining in `dst`'s ring.
    pub fn free_space(&self, dst: NodeId) -> u64 {
        let l = self.lane(dst);
        self.cap - (l.head_abs - l.acked_abs)
    }

    /// Mark every frame to `dst` with sequence `<= seq` as reusable.
    /// Monotone and idempotent (acknowledging an already-acked seq is a
    /// no-op), which is what SST-carried cumulative acks need.
    pub fn ack(&mut self, dst: NodeId, seq: u64) {
        let l = self.lane_mut(dst);
        while let Some(&(s, end)) = l.pending.front() {
            if s <= seq {
                l.acked_abs = end;
                l.pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Forget all transport state toward `dst`: sequence numbers, in-flight
    /// frames, and acknowledged space restart from a fresh ring. Called when
    /// `dst` reboots and its (zeroed) ring region is re-mirrored from
    /// scratch.
    pub fn reset_lane(&mut self, dst: NodeId) {
        let l = self.lane_mut(dst);
        l.head_abs = 0;
        l.next_seq = 0;
        l.acked_abs = 0;
        l.pending.clear();
    }

    /// [`RingSender::reset_lane`] plus retargeting: subsequent frames to
    /// `dst` are written into `region` (a ring the receiver freshly
    /// registered, same geometry) instead of the canonical mirror. Using a
    /// new region makes the restart safe against stragglers: writes of the
    /// torn-down stream that are still in flight land in the abandoned
    /// region and can never corrupt the new one.
    pub fn retarget_lane(&mut self, dst: NodeId, region: RegionId) {
        self.reset_lane(dst);
        self.lane_mut(dst).region = region;
    }

    /// Send `payload` to `dst`; returns the frame's transport sequence
    /// number. Fails with [`RingError::Full`] when the receiver has not yet
    /// acknowledged enough earlier frames. `kind` classifies the frame's
    /// bytes for resource accounting; the wrap marker and split-mode counter
    /// posts inherit it (they exist only to publish this frame).
    pub fn send_to<M: From<RdmaPkt>>(
        &mut self,
        ctx: &mut Ctx<M>,
        ep: &mut Endpoint,
        dst: NodeId,
        payload: &[u8],
        kind: MsgKind,
    ) -> Result<u64, RingError> {
        let cap = self.cap;
        let mode = self.mode;
        let frame_len = FRAME_HDR + payload.len() as u64;
        // A frame must fit in half the ring: wraps then only trigger at
        // positions past cap/2 >= frame_len, so a post-wrap frame can never
        // overlap the wrap marker it just skipped (and every frame
        // eventually fits once acknowledged space frees up).
        if frame_len * 2 > cap || payload.len() as u64 >= u64::from(WRAP) - 1 {
            return Err(RingError::TooLarge);
        }
        let l = self.lanes[dst].as_mut().expect("unknown lane");
        let region = l.region;

        let pos = l.head_abs % cap;
        let rem = cap - pos;
        let wrap_bytes = if pos + frame_len > cap { rem } else { 0 };
        if l.head_abs + wrap_bytes + frame_len - l.acked_abs > cap {
            ctx.count(Counter::RingStalls, 1);
            return Err(RingError::Full);
        }
        // Up to three posts: wrap marker, frame, (split) counter.
        let posts = 1 + u32::from(wrap_bytes >= 4) + u32::from(mode == RingMode::Split);
        if !ep.can_post(dst, posts) {
            return Err(RingError::Post(PostError::QueueFull));
        }

        if wrap_bytes > 0 {
            ctx.count(Counter::RingWraps, 1);
            if wrap_bytes >= 4 {
                ep.post_write(
                    ctx,
                    dst,
                    region,
                    pos as u32,
                    Bytes::copy_from_slice(&WRAP.to_le_bytes()),
                    kind,
                )
                .map_err(RingError::Post)?;
            }
            // If rem < 4 the receiver wraps implicitly (rem < FRAME_HDR and
            // too small even for a marker).
            l.head_abs += wrap_bytes;
        }

        let pos = (l.head_abs % cap) as u32;
        let seq = l.next_seq;
        let mut frame = Vec::with_capacity(frame_len as usize);
        frame.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(payload);
        ep.post_write(ctx, dst, region, pos, Bytes::from(frame), kind)
            .map_err(RingError::Post)?;
        if mode == RingMode::Split {
            ep.post_write(
                ctx,
                dst,
                region,
                cap as u32,
                Bytes::copy_from_slice(&(seq + 1).to_le_bytes()),
                kind,
            )
            .map_err(RingError::Post)?;
        }
        l.head_abs += frame_len;
        l.next_seq = seq + 1;
        l.pending.push_back((seq, l.head_abs));
        self.frames_sent += 1;
        ctx.count(Counter::RingFrames, 1);
        Ok(seq)
    }
}

/// Receiver half: polls the local mirror of one sender's ring.
pub struct RingReceiver {
    region: RegionId,
    cap: u64,
    mode: RingMode,
    consumed_abs: u64,
    next_seq: u64,
    /// Largest batch drained by a single poll (receiver-side batching stat).
    pub max_batch: usize,
    /// Polls abandoned because the bytes at the consume position failed
    /// validation (length overruns the ring, or the frame carries the wrong
    /// transport sequence). Nonzero only around crash-recovery, when a
    /// rebooted peer restarts its stream at offset zero of a region this
    /// receiver is still mid-way through; a clean run keeps this at zero.
    pub desyncs: u64,
}

impl RingReceiver {
    /// Create the receiver view over `region` (same geometry as the sender).
    pub fn new(region: RegionId, region_len: usize, mode: RingMode) -> Self {
        let cap = match mode {
            RingMode::Coupled => region_len as u64,
            RingMode::Split => region_len as u64 - COUNTER_LEN,
        };
        RingReceiver {
            region,
            cap,
            mode,
            consumed_abs: 0,
            next_seq: 0,
            max_batch: 0,
            desyncs: 0,
        }
    }

    /// Transport sequence number of the next frame this receiver expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Drain every complete frame currently visible (one receiver-side
    /// batch). Returns `(seq, payload)` pairs in order. Consumed bytes are
    /// zeroed so the next lap of the ring starts clean.
    pub fn poll(&mut self, ep: &mut Endpoint) -> Vec<(u64, Bytes)> {
        let mut out = Vec::new();
        let published = match self.mode {
            RingMode::Split => {
                let raw = ep.read(self.region, self.cap as u32, 8);
                u64::from_le_bytes(raw.try_into().expect("counter"))
            }
            RingMode::Coupled => u64::MAX, // validated per-frame by length
        };
        loop {
            if self.next_seq >= published {
                break;
            }
            let pos = self.consumed_abs % self.cap;
            let rem = self.cap - pos;
            if rem < 4 {
                self.zero(ep, pos, rem);
                self.consumed_abs += rem;
                continue;
            }
            let len_raw = ep.read(self.region, pos as u32, 4);
            let len_field = u32::from_le_bytes(len_raw.try_into().expect("len"));
            if len_field == WRAP {
                self.zero(ep, pos, rem);
                self.consumed_abs += rem;
                continue;
            }
            if len_field == 0 {
                if rem < FRAME_HDR {
                    // No frame can start here; an unmarked wrap in split
                    // mode (counter says more frames exist past it).
                    if self.mode == RingMode::Split {
                        self.zero(ep, pos, rem);
                        self.consumed_abs += rem;
                        continue;
                    }
                }
                break; // nothing here yet
            }
            let payload_len = u64::from(len_field - 1);
            let frame_len = FRAME_HDR + payload_len;
            if pos + frame_len > self.cap {
                // Not a length this stream can have written: after a peer
                // crash-reboots, its fresh stream restarts at offset zero of
                // the same region while this consume position still points
                // into the abandoned stream, so reads here land mid-frame and
                // decode payload bytes as a header. Stop consuming — the
                // owner's stall detection tears the ring down and rebuilds it.
                self.desyncs += 1;
                break;
            }
            let seq_raw = ep.read(self.region, pos as u32 + 4, 8);
            let seq = u64::from_le_bytes(seq_raw.try_into().expect("seq"));
            if seq != self.next_seq {
                // Same desync as the overrun case, just with a plausible
                // length: a stale or torn frame from a dead incarnation.
                // Leave it unconsumed; recovery belongs to the resync path.
                self.desyncs += 1;
                break;
            }
            let payload = Bytes::copy_from_slice(ep.read(
                self.region,
                pos as u32 + FRAME_HDR as u32,
                payload_len as usize,
            ));
            self.zero(ep, pos, frame_len);
            out.push((seq, payload));
            self.consumed_abs += frame_len;
            self.next_seq += 1;
        }
        self.max_batch = self.max_batch.max(out.len());
        out
    }

    fn zero(&self, ep: &mut Endpoint, pos: u64, len: u64) {
        // Local memset of consumed bytes; bounded by ring capacity.
        ep.zero_local(self.region, pos as u32, len as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::QpConfig;
    use simnet::{Ctx, NetParams, Process, Sim, SimTime};
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Wire(RdmaPkt);
    impl From<RdmaPkt> for Wire {
        fn from(p: RdmaPkt) -> Self {
            Wire(p)
        }
    }

    /// Region plan for the tests: region 0 = the ring, region 1 = an 8-byte
    /// cumulative-ack cell the receiver RDMA-writes back to the sender
    /// (a one-slot SST, exactly how Acuerdo acknowledges).
    fn plan(ep: &mut Endpoint, ring_len: usize) -> (RegionId, RegionId) {
        let ring = ep.register_region(ring_len);
        let ack = ep.register_region(8);
        (ring, ack)
    }

    /// Sender node: emits `to_send` payloads as fast as flow control allows,
    /// learning acks from its ack cell.
    struct Sender {
        ep: Endpoint,
        ring: RingSender,
        ack_region: RegionId,
        dst: NodeId,
        to_send: VecDeque<Vec<u8>>,
        errors: Vec<RingError>,
    }

    impl Process<Wire> for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
            ctx.set_timer(Duration::from_nanos(500), 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
            self.ep.on_packet(ctx, from, msg.0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
            // Cumulative ack cell holds (last consumed seq + 1).
            let acked = u64::from_le_bytes(self.ep.read(self.ack_region, 0, 8).try_into().unwrap());
            if acked > 0 {
                self.ring.ack(self.dst, acked - 1);
            }
            while let Some(p) = self.to_send.front() {
                match self
                    .ring
                    .send_to(ctx, &mut self.ep, self.dst, p, MsgKind::Payload)
                {
                    Ok(_) => {
                        self.to_send.pop_front();
                    }
                    Err(e) => {
                        self.errors.push(e);
                        break;
                    }
                }
            }
            if !self.to_send.is_empty() {
                ctx.set_timer(Duration::from_micros(1), 0);
            }
        }
    }

    /// Receiver node: polls every microsecond and pushes a cumulative ack.
    struct Receiver {
        ep: Endpoint,
        ring: RingReceiver,
        ack_region: RegionId,
        sender: NodeId,
        push_acks: bool,
        got: Vec<(u64, Bytes)>,
        batches: Vec<usize>,
    }

    impl Process<Wire> for Receiver {
        fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
            ctx.set_timer(Duration::from_micros(1), 0);
        }
        fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
            self.ep.on_packet(ctx, from, msg.0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
            let batch = self.ring.poll(&mut self.ep);
            if !batch.is_empty() {
                self.batches.push(batch.len());
                if self.push_acks {
                    let acked = self.ring.next_seq();
                    self.ep
                        .write_local(self.ack_region, 0, &acked.to_le_bytes());
                    let data = Bytes::copy_from_slice(self.ep.read(self.ack_region, 0, 8));
                    let _ = self.ep.post_write(
                        ctx,
                        self.sender,
                        self.ack_region,
                        0,
                        data,
                        MsgKind::Ack,
                    );
                }
            }
            self.got.extend(batch);
            ctx.set_timer(Duration::from_micros(1), 0);
        }
    }

    fn pair(
        mode: RingMode,
        ring_len: usize,
        payloads: Vec<Vec<u8>>,
        push_acks: bool,
    ) -> (Sim<Wire>, NodeId, NodeId) {
        let mut sim = Sim::new(11, NetParams::rdma());
        let mk_ep = || {
            let mut ep = Endpoint::new(QpConfig {
                post_cost: Duration::from_nanos(100),
                ..QpConfig::default()
            });
            ep.connect(0);
            ep.connect(1);
            ep
        };
        let mut sep = mk_ep();
        let (sring, sack) = plan(&mut sep, ring_len);
        let s = Sender {
            ep: sep,
            ring: RingSender::new(sring, ring_len, mode, &[1]),
            ack_region: sack,
            dst: 1,
            to_send: payloads.into(),
            errors: vec![],
        };
        let mut rep = mk_ep();
        let (rring, rack) = plan(&mut rep, ring_len);
        assert_eq!((sring, sack), (rring, rack), "region plan mismatch");
        let r = Receiver {
            ep: rep,
            ring: RingReceiver::new(rring, ring_len, mode),
            ack_region: rack,
            sender: 0,
            push_acks,
            got: vec![],
            batches: vec![],
        };
        let a = sim.add_node(Box::new(s));
        let b = sim.add_node(Box::new(r));
        (sim, a, b)
    }

    #[test]
    fn coupled_delivers_in_order() {
        let msgs: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; 10]).collect();
        let (mut sim, _a, b) = pair(RingMode::Coupled, 4096, msgs.clone(), true);
        sim.run_until(SimTime::from_millis(5));
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 100);
        for (i, (seq, p)) in r.got.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(p.as_ref(), &msgs[i][..]);
        }
    }

    #[test]
    fn split_delivers_in_order() {
        let msgs: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; 10]).collect();
        let (mut sim, _a, b) = pair(RingMode::Split, 4096, msgs, true);
        sim.run_until(SimTime::from_millis(5));
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 100);
        assert!(r.got.iter().enumerate().all(|(i, (s, _))| *s == i as u64));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let msgs: Vec<Vec<u8>> = vec![vec![], vec![1], vec![]];
        let (mut sim, _a, b) = pair(RingMode::Coupled, 4096, msgs, true);
        sim.run_until(SimTime::from_millis(2));
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 3);
        assert!(r.got[0].1.is_empty());
        assert_eq!(r.got[1].1.as_ref(), &[1]);
    }

    #[test]
    fn split_posts_twice_as_many_writes() {
        let msgs: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 10]).collect();
        let (mut sim, a1, _) = pair(RingMode::Coupled, 1 << 16, msgs.clone(), true);
        sim.run_until(SimTime::from_millis(5));
        let coupled_posts = sim.node::<Sender>(a1).ring.frames_sent;
        let coupled_writes = sim.node::<Sender>(a1).ep.writes_posted;
        let (mut sim2, a2, _) = pair(RingMode::Split, 1 << 16, msgs, true);
        sim2.run_until(SimTime::from_millis(5));
        let split_writes = sim2.node::<Sender>(a2).ep.writes_posted;
        assert_eq!(coupled_posts, 50);
        assert_eq!(coupled_writes, 50);
        assert_eq!(split_writes, 100);
    }

    #[test]
    fn wraps_many_laps() {
        // Ring of 256 bytes, 300 messages of ~20 bytes: dozens of laps.
        let msgs: Vec<Vec<u8>> = (0..300u32)
            .map(|i| i.to_le_bytes().repeat(5)) // 20 bytes
            .collect();
        let (mut sim, a, b) = pair(RingMode::Coupled, 256, msgs.clone(), true);
        sim.run_until(SimTime::from_millis(20));
        let s = sim.node::<Sender>(a);
        assert!(
            s.to_send.is_empty(),
            "sender stalled: {:?}",
            s.errors.last()
        );
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 300);
        for (i, (_, p)) in r.got.iter().enumerate() {
            assert_eq!(p.as_ref(), &msgs[i][..], "payload {i}");
        }
    }

    #[test]
    fn split_wraps_many_laps() {
        let msgs: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_le_bytes().repeat(4)).collect();
        let (mut sim, a, b) = pair(RingMode::Split, 200, msgs.clone(), true);
        sim.run_until(SimTime::from_millis(20));
        assert!(sim.node::<Sender>(a).to_send.is_empty());
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 200);
        for (i, (_, p)) in r.got.iter().enumerate() {
            assert_eq!(p.as_ref(), &msgs[i][..], "payload {i}");
        }
    }

    #[test]
    fn wraps_with_awkward_sizes() {
        // Payload sizes chosen to land wrap points at every remainder class,
        // including rem < 4 (implicit wrap) and 4 <= rem < 12 (marker wrap).
        let sizes = [1usize, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
        let msgs: Vec<Vec<u8>> = (0..240)
            .map(|i| vec![(i % 251) as u8; sizes[i % sizes.len()]])
            .collect();
        let (mut sim, a, b) = pair(RingMode::Coupled, 128, msgs.clone(), true);
        sim.run_until(SimTime::from_millis(50));
        assert!(sim.node::<Sender>(a).to_send.is_empty());
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 240);
        for (i, (_, p)) in r.got.iter().enumerate() {
            assert_eq!(p.as_ref(), &msgs[i][..], "payload {i}");
        }
    }

    #[test]
    fn backpressure_without_acks() {
        // No acks: the sender must fill the ring and stall with Full.
        let msgs: Vec<Vec<u8>> = (0..100u8).map(|i| vec![i; 20]).collect();
        let (mut sim, a, b) = pair(RingMode::Coupled, 256, msgs, false);
        sim.run_until(SimTime::from_millis(2));
        let s = sim.node::<Sender>(a);
        assert!(!s.to_send.is_empty(), "should have stalled");
        assert!(s.errors.contains(&RingError::Full));
        // Receiver got exactly what fit.
        let r = sim.node::<Receiver>(b);
        assert!(r.got.len() < 100 && !r.got.is_empty());
    }

    #[test]
    fn ack_is_monotone_and_idempotent() {
        let mut ring = RingSender::new(RegionId(0), 1024, RingMode::Coupled, &[1]);
        ring.ack(1, u64::MAX); // empty pending: no-op
        assert_eq!(ring.free_space(1), 1024);
        assert_eq!(ring.next_seq(1), 0);
    }

    #[test]
    fn too_large_payload_rejected() {
        let mut sim: Sim<Wire> = Sim::new(1, NetParams::rdma());
        struct Once {
            ep: Endpoint,
            ring: RingSender,
            out: Option<Result<u64, RingError>>,
        }
        impl Process<Wire> for Once {
            fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
                self.out =
                    Some(
                        self.ring
                            .send_to(ctx, &mut self.ep, 1, &[0u8; 60], MsgKind::Payload),
                    );
            }
            fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
                self.ep.on_packet(ctx, from, msg.0);
            }
        }
        let mut ep = Endpoint::new(QpConfig::default());
        ep.connect(1);
        let region = ep.register_region(64);
        let id = sim.add_node(Box::new(Once {
            ep,
            ring: RingSender::new(region, 64, RingMode::Coupled, &[1]),
            out: None,
        }));
        sim.run_until(SimTime::from_micros(10));
        assert_eq!(sim.node::<Once>(id).out, Some(Err(RingError::TooLarge)));
    }

    #[test]
    fn receiver_side_batching_under_pause() {
        // Pause the receiver: frames pile up and are drained as one batch.
        let msgs: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 10]).collect();
        let (mut sim, _a, b) = pair(RingMode::Coupled, 8192, msgs, true);
        sim.pause_at(b, SimTime::ZERO, Duration::from_micros(500));
        sim.run_until(SimTime::from_millis(5));
        let r = sim.node::<Receiver>(b);
        assert_eq!(r.got.len(), 50);
        // The first poll after the pause drains a large batch.
        let max = r.batches.iter().copied().max().unwrap();
        assert!(max >= 20, "expected a big catch-up batch, got {max}");
        assert_eq!(r.ring.max_batch, max);
    }

    #[test]
    fn retarget_lane_restarts_stream_in_fresh_region() {
        // Frames sent after a retarget start at seq 0 in the new region; the
        // old region keeps whatever the torn-down stream deposited there.
        let mut sim: Sim<Wire> = Sim::new(3, NetParams::rdma());
        struct S {
            ep: Endpoint,
            ring: RingSender,
        }
        impl Process<Wire> for S {
            fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
                self.ring
                    .send_to(ctx, &mut self.ep, 1, b"one", MsgKind::Payload)
                    .unwrap();
                self.ring
                    .send_to(ctx, &mut self.ep, 1, b"two", MsgKind::Payload)
                    .unwrap();
                ctx.set_timer(Duration::from_micros(100), 0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
                self.ep.on_packet(ctx, from, msg.0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
                self.ring.retarget_lane(1, RegionId(2));
                let seq = self
                    .ring
                    .send_to(ctx, &mut self.ep, 1, b"three", MsgKind::Payload)
                    .unwrap();
                assert_eq!(seq, 0, "retarget restarts the sequence space");
            }
        }
        struct R {
            ep: Endpoint,
            old: RingReceiver,
            new: RingReceiver,
            got_old: Vec<Bytes>,
            got_new: Vec<Bytes>,
        }
        impl Process<Wire> for R {
            fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
                ctx.set_timer(Duration::from_micros(10), 0);
            }
            fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
                self.ep.on_packet(ctx, from, msg.0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
                self.got_old
                    .extend(self.old.poll(&mut self.ep).into_iter().map(|(_, p)| p));
                self.got_new
                    .extend(self.new.poll(&mut self.ep).into_iter().map(|(_, p)| p));
                ctx.set_timer(Duration::from_micros(10), 0);
            }
        }
        let mut sep = Endpoint::new(QpConfig::default());
        sep.connect(1);
        let sring = sep.register_region(1024);
        let mut rep = Endpoint::new(QpConfig::default());
        rep.connect(0);
        let r0 = rep.register_region(1024);
        let _spacer = rep.register_region(8);
        let r2 = rep.register_region(1024);
        assert_eq!(r2, RegionId(2));
        let _s = sim.add_node(Box::new(S {
            ep: sep,
            ring: RingSender::new(sring, 1024, RingMode::Coupled, &[1]),
        }));
        let r = sim.add_node(Box::new(R {
            ep: rep,
            old: RingReceiver::new(r0, 1024, RingMode::Coupled),
            new: RingReceiver::new(r2, 1024, RingMode::Coupled),
            got_old: vec![],
            got_new: vec![],
        }));
        sim.run_until(SimTime::from_millis(1));
        let rx = sim.node::<R>(r);
        assert_eq!(
            rx.got_old,
            vec![Bytes::from_static(b"one"), Bytes::from_static(b"two")]
        );
        assert_eq!(rx.got_new, vec![Bytes::from_static(b"three")]);
    }

    #[test]
    fn lanes_are_independent() {
        // One sender, two receivers; unicast different frames to each.
        let mut sim: Sim<Wire> = Sim::new(9, NetParams::rdma());
        struct Multi {
            ep: Endpoint,
            ring: RingSender,
        }
        impl Process<Wire> for Multi {
            fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
                self.ring
                    .send_to(ctx, &mut self.ep, 1, b"to-one", MsgKind::Payload)
                    .unwrap();
                self.ring
                    .send_to(ctx, &mut self.ep, 2, b"to-two", MsgKind::Payload)
                    .unwrap();
                self.ring
                    .send_to(ctx, &mut self.ep, 2, b"more-two", MsgKind::Payload)
                    .unwrap();
            }
            fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
                self.ep.on_packet(ctx, from, msg.0);
            }
        }
        let mut sep = Endpoint::new(QpConfig::default());
        sep.connect(1);
        sep.connect(2);
        let (sring, _) = plan(&mut sep, 1024);
        let sender = Multi {
            ep: sep,
            ring: RingSender::new(sring, 1024, RingMode::Coupled, &[1, 2]),
        };
        let mk_rx = || {
            let mut e = Endpoint::new(QpConfig::default());
            e.connect(0);
            let (ring, ack) = plan(&mut e, 1024);
            Receiver {
                ep: e,
                ring: RingReceiver::new(ring, 1024, RingMode::Coupled),
                ack_region: ack,
                sender: 0,
                push_acks: false,
                got: vec![],
                batches: vec![],
            }
        };
        let _s = sim.add_node(Box::new(sender));
        let r1 = sim.add_node(Box::new(mk_rx()));
        let r2 = sim.add_node(Box::new(mk_rx()));
        sim.run_until(SimTime::from_millis(1));
        let g1 = &sim.node::<Receiver>(r1).got;
        let g2 = &sim.node::<Receiver>(r2).got;
        assert_eq!(g1.len(), 1);
        assert_eq!(g1[0].1.as_ref(), b"to-one");
        assert_eq!(g2.len(), 2);
        assert_eq!(g2[0].1.as_ref(), b"to-two");
        assert_eq!(g2[1].1.as_ref(), b"more-two");
        // Per-lane sequencing: both lanes started at seq 0.
        assert_eq!(g1[0].0, 0);
        assert_eq!(g2[0].0, 0);
    }

    #[test]
    fn poll_survives_garbage_at_the_consume_position() {
        // A rebooted peer restarts its stream at offset zero of a region the
        // receiver is still mid-way through, so the bytes at the consume
        // position can be payload, not a header. Poll must refuse to decode
        // them — no panic, no garbage delivery — and count the desync so the
        // owner's stall detection can rebuild the ring.
        let mut ep = Endpoint::new(QpConfig::default());
        let region = ep.register_region(256);
        let mut rx = RingReceiver::new(region, 256, RingMode::Coupled);

        // Payload bytes read as a length word: frame would overrun the ring.
        ep.write_local(region, 0, &0xdead_beef_u32.to_le_bytes());
        assert!(rx.poll(&mut ep).is_empty());
        assert_eq!(rx.desyncs, 1);

        // Plausible length but the wrong transport sequence: a stale frame
        // from a dead incarnation.
        ep.write_local(region, 0, &5u32.to_le_bytes());
        ep.write_local(region, 4, &7u64.to_le_bytes());
        assert!(rx.poll(&mut ep).is_empty());
        assert_eq!(rx.desyncs, 2);
    }
}
