//! The Shared State Table (Figure 2 of the paper).

use crate::codec::FixedCodec;
use rdma_sim::{Endpoint, PostError, RdmaPkt, RegionId};
use simnet::{Counter, Ctx, MsgKind, NodeId};
use std::marker::PhantomData;

/// A replicated array of `n` cells of type `T`, one per node.
///
/// Every node holds a full local copy in registered memory. Node `i` has
/// *logical* write access only to slot `i`; it updates the slot locally with
/// [`Sst::write_mine`] and replicates it with [`Sst::push_mine_to`] /
/// [`Sst::push_mine`], which issue one-sided RDMA writes into the same slot
/// of the peers' copies. Traversing the local copy with [`Sst::read`] gives a
/// per-slot "last write wins" snapshot — exactly the semantics the paper
/// wants for monotone values like the latest accepted message header.
///
/// All nodes must construct their SSTs in the same order so the backing
/// region ids line up (the region-plan convention).
pub struct Sst<T: FixedCodec> {
    region: RegionId,
    n: usize,
    me: usize,
    _cell: PhantomData<T>,
}

impl<T: FixedCodec> Sst<T> {
    /// Register the backing region on `ep` and return the table handle.
    pub fn register(ep: &mut Endpoint, n: usize, me: usize) -> Self {
        assert!(me < n, "own index out of range");
        let region = ep.register_region(n * T::SIZE);
        Sst {
            region,
            n,
            me,
            _cell: PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: an SST has one slot per node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// This node's slot index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// The backing region id (for tests and layout assertions).
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Read slot `j` from the local copy.
    pub fn read(&self, ep: &Endpoint, j: usize) -> T {
        assert!(j < self.n, "slot out of range");
        T::decode(ep.read(self.region, (j * T::SIZE) as u32, T::SIZE))
    }

    /// Read this node's own slot.
    pub fn mine(&self, ep: &Endpoint) -> T {
        self.read(ep, self.me)
    }

    /// Snapshot all slots (the `votes_cpy = Vote_SST` of Figure 7).
    pub fn snapshot(&self, ep: &Endpoint) -> Vec<T> {
        (0..self.n).map(|j| self.read(ep, j)).collect()
    }

    /// Update this node's own slot in the local copy only.
    pub fn write_mine(&self, ep: &mut Endpoint, v: &T) {
        let mut buf = vec![0u8; T::SIZE];
        v.encode(&mut buf);
        ep.write_local(self.region, (self.me * T::SIZE) as u32, &buf);
    }

    /// Zero slot `j` in the local copy: forget the mirrored state of a peer
    /// that rebooted (its fresh incarnation starts from all-zero cells and
    /// will re-push real values).
    pub fn reset_slot(&self, ep: &mut Endpoint, j: usize) {
        assert!(j < self.n, "slot out of range");
        let zeros = vec![0u8; T::SIZE];
        ep.write_local(self.region, (j * T::SIZE) as u32, &zeros);
    }

    /// Replicate this node's slot to `peer` with one RDMA write.
    pub fn push_mine_to<M: From<RdmaPkt>>(
        &self,
        ctx: &mut Ctx<M>,
        ep: &mut Endpoint,
        peer: NodeId,
    ) -> Result<(), PostError> {
        let off = (self.me * T::SIZE) as u32;
        let data = bytes::Bytes::copy_from_slice(ep.read(self.region, off, T::SIZE));
        ctx.count(Counter::SstPushes, 1);
        // SST rows carry acknowledgment/visibility state, never payload.
        ep.post_write(ctx, peer, self.region, off, data, MsgKind::Ack)
    }

    /// Replicate this node's slot to every node in `peers` except itself.
    ///
    /// Returns the first post error, if any (callers treat SST pushes as
    /// best-effort: the next push carries strictly newer state anyway).
    pub fn push_mine<M: From<RdmaPkt>>(
        &self,
        ctx: &mut Ctx<M>,
        ep: &mut Endpoint,
        peers: &[NodeId],
    ) -> Result<(), PostError> {
        let mut first_err = Ok(());
        for &p in peers {
            if p == self.me {
                continue;
            }
            if let Err(e) = self.push_mine_to(ctx, ep, p) {
                if first_err.is_ok() {
                    first_err = Err(e);
                }
            }
        }
        first_err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdma_sim::QpConfig;
    use simnet::{NetParams, Process, Sim, SimTime};
    use std::time::Duration;

    type Cell = (u32, u64);

    struct SstNode {
        ep: Endpoint,
        sst: Sst<Cell>,
        peers: Vec<NodeId>,
        value: Cell,
        push_at_start: bool,
    }

    #[derive(Clone, Debug)]
    struct Wire(RdmaPkt);
    impl From<RdmaPkt> for Wire {
        fn from(p: RdmaPkt) -> Self {
            Wire(p)
        }
    }

    impl Process<Wire> for SstNode {
        fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
            if self.push_at_start {
                self.sst.write_mine(&mut self.ep, &self.value);
                let peers = self.peers.clone();
                self.sst.push_mine(ctx, &mut self.ep, &peers).unwrap();
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
            self.ep.on_packet(ctx, from, msg.0);
        }
    }

    fn cluster(n: usize) -> (Sim<Wire>, Vec<NodeId>) {
        let mut sim = Sim::new(5, NetParams::rdma());
        let ids: Vec<NodeId> = (0..n).collect();
        for me in 0..n {
            let mut ep = Endpoint::new(QpConfig::default());
            for &p in &ids {
                ep.connect(p);
            }
            let sst = Sst::<Cell>::register(&mut ep, n, me);
            sim.add_node(Box::new(SstNode {
                ep,
                sst,
                peers: ids.clone(),
                value: (me as u32 + 1, (me as u64 + 1) * 100),
                push_at_start: true,
            }));
        }
        (sim, ids)
    }

    #[test]
    fn pushes_replicate_to_all_peers() {
        let (mut sim, ids) = cluster(3);
        sim.run_until(SimTime::from_millis(1));
        for &reader in &ids {
            let node = sim.node::<SstNode>(reader);
            for j in 0..3 {
                assert_eq!(
                    node.sst.read(&node.ep, j),
                    (j as u32 + 1, (j as u64 + 1) * 100),
                    "reader {reader} slot {j}"
                );
            }
        }
    }

    #[test]
    fn snapshot_matches_individual_reads() {
        let (mut sim, _) = cluster(4);
        sim.run_until(SimTime::from_millis(1));
        let node = sim.node::<SstNode>(0);
        let snap = node.sst.snapshot(&node.ep);
        assert_eq!(snap.len(), 4);
        for (j, v) in snap.iter().enumerate() {
            assert_eq!(*v, node.sst.read(&node.ep, j));
        }
    }

    #[test]
    fn last_write_wins_remotely() {
        // Node 0's slot is overwritten by successive remote writes; node 1
        // always converges to the latest value.
        let (mut sim, _) = cluster(2);
        sim.run_until(SimTime::from_millis(1));
        for v in [(5u32, 50u64), (9, 90), (3, 30)] {
            let node = sim.node_mut::<SstNode>(0);
            node.sst.write_mine(&mut node.ep, &v);
            let (region, data) = (
                node.sst.region(),
                bytes::Bytes::copy_from_slice(node.ep.read(node.sst.region(), 0, Cell::SIZE)),
            );
            // Mirror slot 0 to node 1 through the engine.
            sim.inject(
                0,
                1,
                simnet::DeliveryClass::Dma,
                Duration::from_micros(1),
                Wire(RdmaPkt::Write {
                    region,
                    offset: 0,
                    data,
                    signal: None,
                }),
            );
            sim.run_for(Duration::from_micros(10));
        }
        let node = sim.node::<SstNode>(1);
        assert_eq!(node.sst.read(&node.ep, 0), (3, 30));
    }

    #[test]
    fn mine_reads_own_slot() {
        let mut ep = Endpoint::new(QpConfig::default());
        let sst = Sst::<u64>::register(&mut ep, 5, 2);
        sst.write_mine(&mut ep, &777);
        assert_eq!(sst.mine(&ep), 777);
        assert_eq!(sst.read(&ep, 0), 0);
        assert_eq!(sst.len(), 5);
        assert_eq!(sst.me(), 2);
    }

    #[test]
    fn region_layout_is_n_times_cell() {
        let mut ep = Endpoint::new(QpConfig::default());
        let sst = Sst::<Cell>::register(&mut ep, 7, 0);
        assert_eq!(ep.region_len(sst.region()), 7 * Cell::SIZE);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let mut ep = Endpoint::new(QpConfig::default());
        let sst = Sst::<u32>::register(&mut ep, 3, 0);
        let _ = sst.read(&ep, 3);
    }

    #[test]
    fn push_survives_peer_crash() {
        let (mut sim, _) = cluster(3);
        sim.crash(2);
        sim.run_until(SimTime::from_millis(1));
        // Nodes 0 and 1 still see each other's slots.
        let node = sim.node::<SstNode>(0);
        assert_eq!(node.sst.read(&node.ep, 1), (2, 200));
    }

    #[test]
    fn sst_write_lands_during_pause() {
        let (mut sim, _) = cluster(2);
        sim.pause_at(1, SimTime::ZERO, Duration::from_millis(5));
        sim.run_until(SimTime::from_millis(1));
        // Node 1's process is descheduled but the SST value is in memory.
        let node = sim.node::<SstNode>(1);
        assert_eq!(node.sst.read(&node.ep, 0), (1, 100));
    }
}
