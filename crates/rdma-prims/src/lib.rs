//! # rdma-prims — the paper's RDMA communication primitives
//!
//! Two building blocks sit under every RDMA protocol in this reproduction:
//!
//! * the **Shared State Table** ([`sst::Sst`], §3.1/Figure 2 of the paper): a
//!   replicated array indexed by node id where each node owns exactly its own
//!   slot and pushes updates with one-sided writes. Because later writes to
//!   the same address overwrite earlier ones, and the receiver only cares
//!   about the *last* value (monotone counters, latest accepted header), a
//!   slot push implicitly acknowledges everything older — the paper's key
//!   trick for avoiding per-message acknowledgments;
//! * the **RDMA ring buffer** ([`ring`], §3.2): a single-sender,
//!   single-receiver mirrored byte ring into which the sender RDMA-writes
//!   framed messages and from which the receiver polls batches (receiver-side
//!   batching). Two framings are provided, because the Acuerdo/Derecho
//!   bandwidth gap in §4.1 comes down to this choice:
//!   [`ring::RingMode::Coupled`] writes data and metadata in **one** RDMA
//!   write (Acuerdo), [`ring::RingMode::Split`] writes data and then a
//!   separate message counter — **two** writes (Derecho).
//!
//! Both primitives are plain values embedded in protocol nodes and operate on
//! an [`rdma_sim::Endpoint`].

pub mod codec;
pub mod ring;
pub mod sst;

pub use codec::FixedCodec;
pub use ring::{RingError, RingMode, RingReceiver, RingSender};
pub use sst::Sst;
