//! Fixed-size little-endian codecs for values stored in SST cells.
//!
//! SST cells must have a fixed size so every node computes identical region
//! layouts, and must encode/decode without allocation (they are read on every
//! poll-loop iteration).

/// A value with a fixed-size byte representation.
pub trait FixedCodec: Sized + Copy + Default {
    /// Encoded size in bytes.
    const SIZE: usize;
    /// Encode into `buf` (`buf.len() == SIZE`).
    fn encode(&self, buf: &mut [u8]);
    /// Decode from `buf` (`buf.len() == SIZE`).
    fn decode(buf: &[u8]) -> Self;
}

impl FixedCodec for u32 {
    const SIZE: usize = 4;
    fn encode(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf.try_into().expect("u32 cell size"))
    }
}

impl FixedCodec for u64 {
    const SIZE: usize = 8;
    fn encode(&self, buf: &mut [u8]) {
        buf.copy_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf.try_into().expect("u64 cell size"))
    }
}

impl<A: FixedCodec, B: FixedCodec> FixedCodec for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;
    fn encode(&self, buf: &mut [u8]) {
        self.0.encode(&mut buf[..A::SIZE]);
        self.1.encode(&mut buf[A::SIZE..]);
    }
    fn decode(buf: &[u8]) -> Self {
        (A::decode(&buf[..A::SIZE]), B::decode(&buf[A::SIZE..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: FixedCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.encode(&mut buf);
        assert_eq!(T::decode(&buf), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(42u64);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u32, 9u64));
        roundtrip((u32::MAX, (1u32, 2u32)));
        assert_eq!(<(u32, u64)>::SIZE, 12);
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.encode(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
