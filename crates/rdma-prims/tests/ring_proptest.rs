//! Property-based tests on the ring buffer: for any payload sequence, ring
//! size, and framing mode, every frame is delivered exactly once, in order,
//! byte-identical — across arbitrarily many ring laps.

use bytes::Bytes;
use proptest::prelude::*;
use rdma_prims::{RingMode, RingReceiver, RingSender};
use rdma_sim::{Endpoint, QpConfig, RdmaPkt, RegionId};
use simnet::{Ctx, MsgKind, NetParams, NodeId, Process, Sim, SimTime};
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Clone, Debug)]
struct Wire(RdmaPkt);
impl From<RdmaPkt> for Wire {
    fn from(p: RdmaPkt) -> Self {
        Wire(p)
    }
}

struct Sender {
    ep: Endpoint,
    ring: RingSender,
    ack_region: RegionId,
    to_send: VecDeque<Vec<u8>>,
}

impl Process<Wire> for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
        ctx.set_timer(Duration::from_micros(1), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
        self.ep.on_packet(ctx, from, msg.0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
        let acked = u64::from_le_bytes(self.ep.read(self.ack_region, 0, 8).try_into().unwrap());
        if acked > 0 {
            self.ring.ack(1, acked - 1);
        }
        while let Some(p) = self.to_send.front() {
            match self.ring.send_to(ctx, &mut self.ep, 1, p, MsgKind::Payload) {
                Ok(_) => {
                    self.to_send.pop_front();
                }
                Err(_) => break,
            }
        }
        ctx.set_timer(Duration::from_micros(1), 0);
    }
}

struct Receiver {
    ep: Endpoint,
    ring: RingReceiver,
    ack_region: RegionId,
    got: Vec<Bytes>,
}

impl Process<Wire> for Receiver {
    fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
        ctx.set_timer(Duration::from_micros(1), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
        self.ep.on_packet(ctx, from, msg.0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
        let batch = self.ring.poll(&mut self.ep);
        if !batch.is_empty() {
            let upto = self.ring.next_seq();
            self.ep.write_local(self.ack_region, 0, &upto.to_le_bytes());
            let data = Bytes::copy_from_slice(self.ep.read(self.ack_region, 0, 8));
            let _ = self
                .ep
                .post_write(ctx, 0, self.ack_region, 0, data, MsgKind::Ack);
            self.got.extend(batch.into_iter().map(|(_, p)| p));
        }
        ctx.set_timer(Duration::from_micros(1), 0);
    }
}

fn run_ring(mode: RingMode, ring_len: usize, payloads: &[Vec<u8>]) -> Vec<Bytes> {
    let mut sim: Sim<Wire> = Sim::new(7, NetParams::rdma());
    let mk = |ring_len: usize| {
        let mut ep = Endpoint::new(QpConfig {
            post_cost: Duration::from_nanos(100),
            ..QpConfig::default()
        });
        let ring = ep.register_region(ring_len);
        let ack = ep.register_region(8);
        ep.connect(0);
        ep.connect(1);
        (ep, ring, ack)
    };
    let (sep, sring, sack) = mk(ring_len);
    let s = Sender {
        ep: sep,
        ring: RingSender::new(sring, ring_len, mode, &[1]),
        ack_region: sack,
        to_send: payloads.iter().cloned().collect(),
    };
    let (rep, rring, rack) = mk(ring_len);
    let r = Receiver {
        ep: rep,
        ring: RingReceiver::new(rring, ring_len, mode),
        ack_region: rack,
        got: vec![],
    };
    sim.add_node(Box::new(s));
    let rid = sim.add_node(Box::new(r));
    // Generous horizon: tiny rings force many laps.
    sim.run_until(SimTime::from_millis(400));
    sim.node::<Receiver>(rid).got.clone()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn exactly_once_in_order_delivery(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 1..80),
        ring_exp in 7usize..12, // 128..4096 bytes
        split in any::<bool>(),
    ) {
        let ring_len = 1usize << ring_exp;
        let mode = if split { RingMode::Split } else { RingMode::Coupled };
        // Frames must fit half the *data capacity* (split mode reserves the
        // final 8 bytes for its counter).
        let cap = ring_len - if split { 8 } else { 0 };
        let max_frame = payloads.iter().map(|p| p.len() + 12).max().unwrap_or(12);
        prop_assume!(max_frame * 2 <= cap);
        let got = run_ring(mode, ring_len, &payloads);
        prop_assert_eq!(got.len(), payloads.len(), "lost or duplicated frames");
        for (i, (g, want)) in got.iter().zip(payloads.iter()).enumerate() {
            prop_assert_eq!(g.as_ref(), &want[..], "payload {} corrupted", i);
        }
    }
}

#[test]
fn debug_single_empty_payload_split() {
    let got = run_ring(RingMode::Split, 128, &[vec![]]);
    assert_eq!(got.len(), 1, "got {:?}", got);
}

#[test]
fn debug_varied_frames_tiny_split_ring() {
    let lens = [
        40usize, 43, 32, 56, 39, 35, 14, 56, 30, 45, 30, 29, 4, 15, 31, 38, 1, 39, 35, 3, 44, 41,
        56,
    ];
    let payloads: Vec<Vec<u8>> = lens
        .iter()
        .enumerate()
        .map(|(i, &l)| vec![i as u8; l])
        .collect();
    let got = run_ring(RingMode::Split, 160, &payloads);
    assert_eq!(got.len(), 23, "delivered only {}", got.len());
}

#[test]
fn debug_big_frames_tiny_split_ring() {
    let payloads: Vec<Vec<u8>> = (0..23u8).map(|i| vec![i; 59]).collect();
    let got = run_ring(RingMode::Split, 160, &payloads);
    assert_eq!(got.len(), 23, "delivered only {}", got.len());
    for (i, g) in got.iter().enumerate() {
        assert_eq!(g.as_ref(), &payloads[i][..], "payload {i}");
    }
}
