//! Focused repro: a split-mode ring where a node broadcasts to several
//! receivers *including itself* through the loopback path, with flow
//! control driven by cumulative acks — the Acuerdo leader's configuration.

use bytes::Bytes;
use rdma_prims::{RingMode, RingReceiver, RingSender};
use rdma_sim::{Endpoint, QpConfig, RdmaPkt, RegionId};
use simnet::{Ctx, MsgKind, NetParams, NodeId, Process, Sim, SimTime};
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Clone, Debug)]
struct Wire(RdmaPkt);
impl From<RdmaPkt> for Wire {
    fn from(p: RdmaPkt) -> Self {
        Wire(p)
    }
}

/// A node that broadcasts frames to every peer (including itself via
/// loopback), receives frames on per-sender rings, and acks by writing a
/// cumulative counter into the sender's ack region — a miniature of the
/// Acuerdo data path.
struct Node {
    me: usize,
    n: usize,
    ep: Endpoint,
    out: RingSender,
    ins: Vec<RingReceiver>,
    ack_region: RegionId,
    to_send: VecDeque<Vec<u8>>,
    sent: u64,
    got: Vec<Vec<(u64, Bytes)>>,
    errors: Vec<rdma_prims::RingError>,
}

impl Node {
    fn new(me: usize, n: usize, ring_len: usize, mode: RingMode) -> Self {
        let mut ep = Endpoint::new(QpConfig::default());
        let mut ins = Vec::new();
        for _ in 0..n {
            let r = ep.register_region(ring_len);
            ins.push(RingReceiver::new(r, ring_len, mode));
        }
        // Ack region: one u64 per (sender, receiver) pair: offset
        // (sender*n + receiver) * 8.
        let ack_region = ep.register_region(n * n * 8);
        for p in 0..n {
            ep.connect(p);
        }
        let peers: Vec<NodeId> = (0..n).collect();
        Node {
            me,
            n,
            out: RingSender::new(RegionId(me as u32), ring_len, mode, &peers),
            ep,
            ins,
            ack_region,
            to_send: VecDeque::new(),
            sent: 0,
            got: (0..n).map(|_| Vec::new()).collect(),
            errors: Vec::new(),
        }
    }

    fn acked_by(&self, receiver: usize) -> u64 {
        let off = ((self.me * self.n + receiver) * 8) as u32;
        u64::from_le_bytes(self.ep.read(self.ack_region, off, 8).try_into().unwrap())
    }
}

impl Process<Wire> for Node {
    fn on_start(&mut self, ctx: &mut Ctx<Wire>) {
        ctx.set_timer(Duration::from_micros(1), 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<Wire>, from: NodeId, msg: Wire) {
        self.ep.on_packet(ctx, from, msg.0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<Wire>, _t: u64) {
        // Learn acks, free ring space.
        for r in 0..self.n {
            let a = self.acked_by(r);
            if a > 0 {
                self.out.ack(r, a - 1);
            }
        }
        // Drain incoming rings, push cumulative acks into the sender's ack
        // region.
        for s in 0..self.n {
            let batch = self.ins[s].poll(&mut self.ep);
            if !batch.is_empty() {
                let upto = self.ins[s].next_seq();
                let off = ((s * self.n + self.me) * 8) as u32;
                self.ep
                    .write_local(self.ack_region, off, &upto.to_le_bytes());
                let data = Bytes::copy_from_slice(self.ep.read(self.ack_region, off, 8));
                let _ = self
                    .ep
                    .post_write(ctx, s, self.ack_region, off, data, MsgKind::Ack);
                self.got[s].extend(batch);
            }
        }
        // Broadcast pending payloads to every peer including self.
        'outer: while let Some(p) = self.to_send.front() {
            for dst in 0..self.n {
                if self.out.free_space(dst) < p.len() as u64 + 16 {
                    break 'outer;
                }
            }
            for dst in 0..self.n {
                match self
                    .out
                    .send_to(ctx, &mut self.ep, dst, p, MsgKind::Payload)
                {
                    Ok(_) => {}
                    Err(e) => {
                        self.errors.push(e);
                        break 'outer;
                    }
                }
            }
            self.sent += 1;
            self.to_send.pop_front();
        }
        ctx.set_timer(Duration::from_micros(1), 0);
    }
}

fn run(mode: RingMode, ring_len: usize, msgs: usize) -> Sim<Wire> {
    let n = 3;
    let mut sim = Sim::new(5, NetParams::rdma());
    for me in 0..n {
        let mut node = Node::new(me, n, ring_len, mode);
        if me == 0 {
            node.to_send = (0..msgs)
                .map(|i| (i as u32).to_le_bytes().repeat(3))
                .collect();
        }
        sim.add_node(Box::new(node));
    }
    sim.run_until(SimTime::from_millis(200));
    sim
}

fn check(sim: &Sim<Wire>, msgs: usize, label: &str) {
    let sender = sim.node::<Node>(0);
    assert!(
        sender.to_send.is_empty(),
        "{label}: sender stalled after {} of {msgs} (errors: {:?})",
        sender.sent,
        sender.errors.last()
    );
    for id in 0..3 {
        let node = sim.node::<Node>(id);
        assert_eq!(
            node.got[0].len(),
            msgs,
            "{label}: node {id} received {} of {msgs}",
            node.got[0].len()
        );
        for (i, (seq, p)) in node.got[0].iter().enumerate() {
            assert_eq!(*seq, i as u64, "{label}: node {id} seq");
            assert_eq!(
                &p[..4],
                &(i as u32).to_le_bytes(),
                "{label}: node {id} payload"
            );
        }
    }
}

#[test]
fn coupled_broadcast_with_self_lane_many_laps() {
    let msgs = 2_000;
    let sim = run(RingMode::Coupled, 512, msgs);
    check(&sim, msgs, "coupled");
}

#[test]
fn split_broadcast_with_self_lane_many_laps() {
    let msgs = 2_000;
    let sim = run(RingMode::Split, 512, msgs);
    check(&sim, msgs, "split");
}

#[test]
fn split_broadcast_with_self_lane_large_ring_no_wrap() {
    let msgs = 500;
    let sim = run(RingMode::Split, 1 << 20, msgs);
    check(&sim, msgs, "split-large");
}
