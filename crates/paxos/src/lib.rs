//! # paxos — the libpaxos baseline
//!
//! A Multi-Paxos implementation over simulated kernel TCP, modeling the
//! open-source libpaxos the Acuerdo paper benchmarks (§4). The
//! performance-relevant properties:
//!
//! * every message runs **its own consensus instance**: a phase-2
//!   ACCEPT/ACCEPTED round per message (steady-state Multi-Paxos with the
//!   coordinator holding a stable ballot), which §4.1 calls out as a major
//!   per-message overhead;
//! * all traffic crosses the **kernel TCP stack** (~25 µs one-way plus
//!   per-message syscall/copy CPU), an order of magnitude above RDMA.
//!
//! Roles are colocated as in libpaxos deployments: every node is an acceptor
//! and a learner; node 0 is the fixed coordinator/proposer (libpaxos's
//! evaluation, like the paper's, runs it with a stable coordinator — no
//! failover is modeled; see DESIGN.md).

use abcast::client::RESP_WIRE;
use abcast::{
    App, Auditor, ClientReq, ClientResp, DeliveryLog, Epoch, MsgHdr, Violation, WindowClient,
};
use bytes::Bytes;
use simnet::params::cpu;
use simnet::FastMap;
use simnet::{
    client_span, msg_span, Ctx, DeliveryClass, Gauge, MsgKind, NetParams, NodeId, Process, Sim,
    SpanStage,
};
use std::collections::BTreeMap;
use std::time::Duration;

/// Configuration of one libpaxos-style instance.
#[derive(Clone, Debug)]
pub struct PaxosConfig {
    /// Number of replicas (acceptor + learner each; node 0 proposes).
    pub n: usize,
    /// Drop client requests beyond this backlog of unfinished instances.
    pub max_backlog: usize,
}

impl Default for PaxosConfig {
    fn default() -> Self {
        PaxosConfig {
            n: 3,
            max_backlog: 1 << 20,
        }
    }
}

/// Wire type of a libpaxos simulation (all [`DeliveryClass::Cpu`]).
#[derive(Clone, Debug)]
pub enum PxWire {
    /// Client request.
    Req(ClientReq),
    /// Client response.
    Resp(ClientResp),
    /// Phase 2a: the coordinator asks acceptors to accept a value.
    Accept {
        /// Instance number (one per message).
        inst: u64,
        /// Originating client and request id (travel with the value).
        client: u32,
        /// Request id.
        id: u64,
        /// The value.
        value: Bytes,
    },
    /// Phase 2b: an acceptor accepted the instance.
    Accepted {
        /// Instance number.
        inst: u64,
    },
    /// Learn: the coordinator announces the chosen value.
    Learn {
        /// Instance number.
        inst: u64,
        /// Originating client.
        client: u32,
        /// Request id.
        id: u64,
        /// Chosen value.
        value: Bytes,
    },
}

impl abcast::ClientPort for PxWire {
    fn request(req: ClientReq) -> Self {
        PxWire::Req(req)
    }
    fn response(&self) -> Option<ClientResp> {
        match self {
            PxWire::Resp(r) => Some(*r),
            _ => None,
        }
    }
}

const DELIVER_COST: Duration = Duration::from_nanos(500);

/// One libpaxos replica.
pub struct PaxosNode {
    cfg: PaxosConfig,
    me: usize,

    // Proposer state (node 0).
    next_inst: u64,
    acks: FastMap<u64, usize>,
    proposals: FastMap<u64, (u32, u64, Bytes)>,
    origin: FastMap<u64, (NodeId, u64)>,

    // Learner state.
    chosen: BTreeMap<u64, (u32, u64, Bytes)>,
    delivered: u64,

    /// Online invariant monitor.
    audit: Auditor,

    /// The replicated application.
    pub app: Box<dyn App>,
    /// Messages delivered to the application.
    pub delivered_count: u64,
    /// Requests dropped (not the proposer / overloaded).
    pub dropped_requests: u64,
}

impl PaxosNode {
    /// Build replica `me` (node 0 is the coordinator).
    pub fn new(cfg: PaxosConfig, me: usize) -> Self {
        PaxosNode {
            cfg,
            me,
            next_inst: 0,
            acks: FastMap::default(),
            proposals: FastMap::default(),
            origin: FastMap::default(),
            chosen: BTreeMap::new(),
            delivered: 0,
            audit: Auditor::new(),
            app: Box::<DeliveryLog>::default(),
            delivered_count: 0,
            dropped_requests: 0,
        }
    }

    fn quorum(&self) -> usize {
        self.cfg.n / 2 + 1
    }

    /// The delivery log, when the default app is installed.
    pub fn delivery_log(&self) -> Option<&DeliveryLog> {
        abcast::app::app_as::<DeliveryLog>(self.app.as_ref())
    }

    fn send(&self, ctx: &mut Ctx<PxWire>, dst: NodeId, wire: u32, msg: PxWire) {
        ctx.use_cpu_at(SpanStage::RingWrite, cpu::TCP_SEND);
        let kind = match &msg {
            PxWire::Req(_) | PxWire::Accept { .. } | PxWire::Learn { .. } => MsgKind::Payload,
            PxWire::Accepted { .. } => MsgKind::Ack,
            PxWire::Resp(_) => MsgKind::Control,
        };
        ctx.send_kind(dst, DeliveryClass::Cpu, wire, kind, msg);
    }

    /// Lifecycle span id of an instance — the same `(1, 0, inst + 1)`
    /// packing as the delivered header.
    fn pspan(inst: u64) -> u64 {
        msg_span(1, 0, inst as u32 + 1)
    }

    /// Feed the invariant auditor. There are no ballot changes in this
    /// stable-coordinator deployment, so the epoch is constant; accept and
    /// commit points are instance counts (chosen-but-undelivered instances
    /// sit in `chosen`, so its tail is the local accept frontier).
    fn observe_audit(&mut self, ctx: &mut Ctx<PxWire>) {
        let e = Epoch::new(1, 0);
        let top = self
            .chosen
            .keys()
            .next_back()
            .map(|&i| i + 1)
            .unwrap_or(self.delivered);
        let acc = if self.me == 0 {
            self.next_inst.max(top)
        } else {
            top
        };
        self.audit.observe(
            ctx,
            e,
            MsgHdr::new(e, acc as u32),
            MsgHdr::new(e, self.delivered as u32),
        );
        ctx.gauge(Gauge::Epoch, 1);
        ctx.gauge(Gauge::CommitFrontierLag, acc.saturating_sub(self.delivered));
    }

    fn on_request(&mut self, ctx: &mut Ctx<PxWire>, from: NodeId, req: ClientReq) {
        if self.me != 0 || self.proposals.len() >= self.cfg.max_backlog {
            self.dropped_requests += 1;
            return;
        }
        let inst = self.next_inst;
        self.next_inst += 1;
        ctx.span(
            Self::pspan(inst),
            SpanStage::LeaderRecv,
            client_span(from, req.id),
        );
        self.origin.insert(inst, (from, req.id));
        self.proposals
            .insert(inst, (from as u32, req.id, req.payload.clone()));
        self.acks.insert(inst, 1); // self-accept
        let wire = req.payload.len() as u32 + 48;
        for a in 1..self.cfg.n {
            self.send(
                ctx,
                a,
                wire,
                PxWire::Accept {
                    inst,
                    client: from as u32,
                    id: req.id,
                    value: req.payload.clone(),
                },
            );
            ctx.span(Self::pspan(inst), SpanStage::RingWrite, a as u64);
        }
        // A single-replica "cluster" chooses immediately.
        self.try_choose(ctx, inst, Some(self.me));
    }

    fn on_accept(&mut self, ctx: &mut Ctx<PxWire>, inst: u64, client: u32, id: u64, value: Bytes) {
        // Stable-ballot Multi-Paxos: the acceptor stores and acknowledges.
        ctx.span(Self::pspan(inst), SpanStage::FollowerAccept, self.me as u64);
        self.chosen_candidate_store(inst, client, id, value);
        self.send(ctx, 0, 48, PxWire::Accepted { inst });
    }

    fn chosen_candidate_store(&mut self, inst: u64, client: u32, id: u64, value: Bytes) {
        // Acceptors keep the value so a Learn only needs to flip state in
        // real libpaxos; here the Learn re-carries it, so this is bookkeeping
        // for symmetry.
        let _ = (inst, client, id, value);
    }

    fn on_accepted(&mut self, ctx: &mut Ctx<PxWire>, from: NodeId, inst: u64) {
        if let Some(c) = self.acks.get_mut(&inst) {
            *c += 1;
            ctx.span(Self::pspan(inst), SpanStage::AckVisible, from as u64);
            if *c == self.quorum() {
                self.try_choose(ctx, inst, Some(from));
            }
        }
    }

    /// `last_ack` names the acceptor whose Accepted completed the quorum —
    /// the straggler the [`SpanStage::Quorum`] mark records.
    fn try_choose(&mut self, ctx: &mut Ctx<PxWire>, inst: u64, last_ack: Option<NodeId>) {
        let quorum = self.quorum();
        let Some(&c) = self.acks.get(&inst) else {
            return;
        };
        if c < quorum {
            return;
        }
        let Some((client, id, value)) = self.proposals.remove(&inst) else {
            return;
        };
        self.acks.remove(&inst);
        let straggler = last_ack.map_or(0, |a| a as u64 + 1);
        ctx.span(Self::pspan(inst), SpanStage::Quorum, straggler);
        let wire = value.len() as u32 + 48;
        for l in 1..self.cfg.n {
            self.send(
                ctx,
                l,
                wire,
                PxWire::Learn {
                    inst,
                    client,
                    id,
                    value: value.clone(),
                },
            );
        }
        self.on_learn(ctx, inst, client, id, value);
    }

    fn on_learn(&mut self, ctx: &mut Ctx<PxWire>, inst: u64, client: u32, id: u64, value: Bytes) {
        self.chosen.insert(inst, (client, id, value));
        // Deliver in instance order, no gaps.
        while let Some((client, id, value)) = self.chosen.remove(&self.delivered) {
            let inst = self.delivered;
            ctx.use_cpu_at(SpanStage::Deliver, DELIVER_COST);
            ctx.span(Self::pspan(inst), SpanStage::Commit, 0);
            let hdr = MsgHdr::new(Epoch::new(1, 0), inst as u32 + 1);
            self.app.deliver(hdr, &value);
            self.delivered_count += 1;
            ctx.span(Self::pspan(inst), SpanStage::Deliver, 0);
            ctx.count(simnet::Counter::Commits, 1);
            self.delivered += 1;
            if self.me == 0 && self.origin.remove(&inst).is_some() {
                self.send(
                    ctx,
                    client as NodeId,
                    RESP_WIRE,
                    PxWire::Resp(ClientResp { id }),
                );
            }
        }
        self.observe_audit(ctx);
    }
}

impl Process<PxWire> for PaxosNode {
    fn on_message(&mut self, ctx: &mut Ctx<PxWire>, from: NodeId, msg: PxWire) {
        ctx.use_cpu(cpu::TCP_MSG);
        match msg {
            PxWire::Req(req) => self.on_request(ctx, from, req),
            PxWire::Accept {
                inst,
                client,
                id,
                value,
            } => self.on_accept(ctx, inst, client, id, value),
            PxWire::Accepted { inst } => self.on_accepted(ctx, from, inst),
            PxWire::Learn {
                inst,
                client,
                id,
                value,
            } => self.on_learn(ctx, inst, client, id, value),
            PxWire::Resp(_) => {}
        }
    }
}

/// Build `cfg.n` replicas occupying simulation ids `0..n`.
pub fn build_cluster(sim: &mut Sim<PxWire>, cfg: &PaxosConfig) -> Vec<NodeId> {
    let mut ids = Vec::with_capacity(cfg.n);
    for me in 0..cfg.n {
        let id = sim.add_node(Box::new(PaxosNode::new(cfg.clone(), me)));
        assert_eq!(id, me);
        ids.push(id);
    }
    ids
}

/// Cluster over the TCP network preset plus a window client at node 0.
pub fn cluster_with_client(
    seed: u64,
    cfg: &PaxosConfig,
    window: usize,
    payload: usize,
    warmup: Duration,
) -> (Sim<PxWire>, Vec<NodeId>, NodeId) {
    let mut sim = Sim::new(seed, NetParams::tcp());
    let ids = build_cluster(&mut sim, cfg);
    let client = sim.add_node(Box::new(WindowClient::<PxWire>::new(
        0, window, payload, warmup,
    )));
    (sim, ids, client)
}

/// Check the §2.2 properties across live replicas.
pub fn check_cluster(sim: &Sim<PxWire>, ids: &[NodeId]) -> Result<(), Violation> {
    let hs: Vec<_> = ids
        .iter()
        .filter(|&&id| !sim.is_crashed(id))
        .map(|&id| {
            sim.node::<PaxosNode>(id)
                .delivery_log()
                .expect("DeliveryLog app")
                .entries
                .clone()
        })
        .collect();
    abcast::check_histories(&hs, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    #[test]
    fn commits_and_totally_orders() {
        let cfg = PaxosConfig::default();
        let (mut sim, ids, client) = cluster_with_client(17, &cfg, 8, 10, Duration::from_millis(5));
        sim.run_until(SimTime::from_millis(50));
        check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<PxWire>>(client).result();
        assert!(r.completed > 100, "completed {}", r.completed);
        for &id in &ids {
            assert!(sim.node::<PaxosNode>(id).delivered_count > 0);
        }
    }

    #[test]
    fn latency_is_an_order_of_magnitude_above_rdma() {
        let cfg = PaxosConfig::default();
        let (mut sim, ids, client) = cluster_with_client(18, &cfg, 1, 10, Duration::from_millis(5));
        sim.run_until(SimTime::from_millis(50));
        check_cluster(&sim, &ids).unwrap();
        let lat = sim
            .node::<WindowClient<PxWire>>(client)
            .result()
            .latency
            .mean_us();
        println!("libpaxos window-1 latency: {lat:.1} us");
        // Figure 8a puts libpaxos around 10^2 us; Acuerdo sits near 10us.
        assert!(lat > 80.0 && lat < 400.0, "latency {lat}");
    }

    #[test]
    fn follower_slowness_outside_quorum_is_tolerated() {
        let cfg = PaxosConfig::default();
        let (mut sim, ids, client) = cluster_with_client(19, &cfg, 8, 10, Duration::from_millis(2));
        sim.pause_at(ids[2], SimTime::ZERO, Duration::from_secs(10));
        sim.run_until(SimTime::from_millis(50));
        check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<PxWire>>(client).result();
        assert!(r.completed > 50, "quorum must still commit");
    }

    #[test]
    fn instances_choose_out_of_order_but_deliver_in_order() {
        // Delay one acceptor link so later instances gather quorum first;
        // delivery order must still be by instance.
        let cfg = PaxosConfig::default();
        let (mut sim, ids, _client) =
            cluster_with_client(20, &cfg, 16, 10, Duration::from_millis(2));
        sim.add_link_latency(0, 1, Duration::from_micros(400), SimTime::from_millis(20));
        sim.run_until(SimTime::from_millis(60));
        check_cluster(&sim, &ids).unwrap();
        let log = sim.node::<PaxosNode>(ids[1]).delivery_log().unwrap();
        let hdrs: Vec<u32> = log.entries.iter().map(|(h, _)| h.cnt).collect();
        assert!(hdrs.windows(2).all(|w| w[0] + 1 == w[1]), "gap in delivery");
    }
}
