//! The Derecho replica state machine.

use abcast::client::RESP_WIRE;
use abcast::{App, Auditor, ClientReq, ClientResp, DeliveryLog, Epoch, MsgHdr};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rdma_prims::{RingMode, RingReceiver, RingSender};
use rdma_sim::{Endpoint, QpConfig, RdmaPkt, RegionId};
use simnet::params::cpu;
use simnet::FastMap;
use simnet::{
    client_span, msg_span, Counter, Ctx, DeliveryClass, Event, Gauge, MsgKind, NodeId, Process,
    SimTime, SpanStage,
};
use std::collections::BTreeMap;
use std::time::Duration;

/// Sending mode (§4.1: derecho-leader vs derecho-all).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Only the lowest-ranked member proposes messages.
    Leader,
    /// Every member proposes; total order is round-robin across senders with
    /// null messages filling idle slots.
    AllSender,
}

/// Configuration of one Derecho instance.
#[derive(Clone, Debug)]
pub struct DerechoConfig {
    /// Number of members.
    pub n: usize,
    /// Sending mode.
    pub mode: Mode,
    /// Bytes per ring buffer.
    pub ring_bytes: usize,
    /// Busy-poll interval.
    pub poll_interval: Duration,
    /// How often each member publishes its SST row (`nReceived` counters +
    /// heartbeat). Derecho's stability is discovered in these rounds rather
    /// than per message.
    pub row_push_interval: Duration,
    /// Suspect a member after this much heartbeat silence.
    pub view_timeout: Duration,
    /// Queue-pair settings.
    pub qp: QpConfig,
    /// Max null messages manufactured per poll (all-sender mode).
    pub max_nulls_per_poll: usize,
    /// Drop client requests beyond this many unstable frames.
    pub max_backlog: usize,
}

impl Default for DerechoConfig {
    fn default() -> Self {
        DerechoConfig {
            n: 3,
            mode: Mode::Leader,
            ring_bytes: 1 << 20,
            poll_interval: cpu::POLL_INTERVAL,
            row_push_interval: Duration::from_micros(10),
            // Generous by default: a saturated member must not be mistaken
            // for a dead one (suspicion evicts permanently in virtual
            // synchrony). Failover tests shorten this.
            view_timeout: Duration::from_millis(100),
            qp: QpConfig::default(),
            max_nulls_per_poll: 64,
            max_backlog: 1 << 20,
        }
    }
}

impl DerechoConfig {
    /// Configuration for an `n`-member group in `mode`, with rings sized so
    /// the `n * (n-1) * ring_bytes` of mirrored registered memory stays
    /// bounded at scalability-sweep sizes (same schedule as
    /// `AcuerdoConfig::ring_bytes_for`); small groups keep the benchmark
    /// geometry unchanged.
    pub fn sized(n: usize, mode: Mode) -> Self {
        let ring_bytes = match n {
            0..=16 => 1 << 20,
            17..=32 => 1 << 18,
            _ => 1 << 16,
        };
        DerechoConfig {
            n,
            mode,
            ring_bytes,
            ..DerechoConfig::default()
        }
    }
}

/// One forwarded frame in a view change: `(sender, seq, data)` where `data`
/// is `None` for a null frame and `Some((client, id, payload))` otherwise.
pub type ForwardedFrame = (u32, u64, Option<(u32, u64, Bytes)>);

/// A view-change proposal (simplified ragged-edge cleanup; see crate docs).
#[derive(Clone, Debug)]
pub struct ViewChange {
    /// Monotone view number.
    pub view_id: u32,
    /// Surviving members.
    pub members: Vec<u32>,
    /// Final frame count per excluded sender (frames `< cut` are delivered,
    /// the rest discarded).
    pub cuts: Vec<(u32, u64)>,
    /// Undelivered frames of excluded senders forwarded by the proposer.
    pub frames: Vec<ForwardedFrame>,
}

/// Wire type of a Derecho simulation.
#[derive(Clone, Debug)]
pub enum DcWire {
    /// One-sided RDMA traffic.
    Rdma(RdmaPkt),
    /// Client request.
    Req(ClientReq),
    /// Client response.
    Resp(ClientResp),
    /// View-change control message.
    View(ViewChange),
}

impl From<RdmaPkt> for DcWire {
    fn from(p: RdmaPkt) -> Self {
        DcWire::Rdma(p)
    }
}

impl abcast::ClientPort for DcWire {
    fn request(req: ClientReq) -> Self {
        DcWire::Req(req)
    }
    fn response(&self) -> Option<ClientResp> {
        match self {
            DcWire::Resp(r) => Some(*r),
            _ => None,
        }
    }
}

/// One frame body: a data message or a round-filling null.
#[derive(Clone, Debug)]
enum Body {
    Null,
    Data {
        client: NodeId,
        id: u64,
        payload: Bytes,
    },
}

fn encode_body(b: &Body) -> Bytes {
    match b {
        Body::Null => Bytes::from_static(&[0u8]),
        Body::Data {
            client,
            id,
            payload,
        } => {
            let mut buf = BytesMut::with_capacity(13 + payload.len());
            buf.put_u8(1);
            buf.put_u32_le(*client as u32);
            buf.put_u64_le(*id);
            buf.put_slice(payload);
            buf.freeze()
        }
    }
}

fn decode_body(mut raw: Bytes) -> Option<Body> {
    if raw.is_empty() {
        return None;
    }
    match raw.get_u8() {
        0 => Some(Body::Null),
        1 => {
            if raw.len() < 12 {
                return None;
            }
            let client = raw.get_u32_le() as NodeId;
            let id = raw.get_u64_le();
            Some(Body::Data {
                client,
                id,
                payload: raw,
            })
        }
        _ => None,
    }
}

const TOK_POLL: u64 = 1;
const TOK_ROW: u64 = 2;
const DELIVER_COST: Duration = Duration::from_nanos(100);

/// One Derecho member.
pub struct DerechoNode {
    cfg: DerechoConfig,
    me: usize,

    ep: Endpoint,
    out_ring: RingSender,
    in_rings: Vec<RingReceiver>,
    row_region: RegionId,

    // View state.
    view_id: u32,
    members: Vec<usize>,
    cuts: FastMap<usize, u64>,
    leader_order: Vec<usize>,
    proposed_view: u32,
    evicted: bool,

    // Sending.
    my_sent: u64,
    sent_frames: BTreeMap<u64, Bytes>,
    lane_next: FastMap<usize, u64>,
    origin: FastMap<u64, (NodeId, u64)>,

    // Receiving / delivery.
    store: Vec<BTreeMap<u64, Body>>,
    delivered_upto: Vec<u64>,
    rr_round: u64,
    rr_idx: usize,
    ldr_idx: usize,
    ldr_seq: u64,

    // Failure detection.
    row_push_seq: u64,
    hb_seen: Vec<(u64, SimTime)>,
    suspected: Vec<bool>,

    /// Stability frontier already announced as a lifecycle mark, per sender.
    stab_seen: Vec<u64>,
    /// Header of the most recent application delivery (audit commit point).
    committed_hdr: MsgHdr,
    /// Online invariant monitor.
    audit: Auditor,

    /// The replicated application.
    pub app: Box<dyn App>,
    /// Messages delivered to the application.
    pub delivered_count: u64,
    /// Data frames this node sent.
    pub sent_data: u64,
    /// Null frames this node sent.
    pub sent_nulls: u64,
    /// Client requests dropped (not a sender / overloaded).
    pub dropped_requests: u64,
}

impl DerechoNode {
    /// Build member `me` of an `n`-member group (simulation ids `0..n`).
    pub fn new(cfg: DerechoConfig, me: usize) -> Self {
        let n = cfg.n;
        assert!(me < n);
        let mut ep = Endpoint::new(cfg.qp);
        // Region plan: n rings, then the state-table rows.
        let mut in_rings = Vec::with_capacity(n);
        for _ in 0..n {
            let r = ep.register_region(cfg.ring_bytes);
            in_rings.push(RingReceiver::new(r, cfg.ring_bytes, RingMode::Split));
        }
        let rowlen = Self::rowlen(n);
        let row_region = ep.register_region(n * rowlen);
        for p in 0..n {
            ep.connect(p);
        }
        let peers: Vec<NodeId> = (0..n).collect();
        let out_ring =
            RingSender::new(RegionId(me as u32), cfg.ring_bytes, RingMode::Split, &peers);
        DerechoNode {
            me,
            ep,
            out_ring,
            in_rings,
            row_region,
            view_id: 0,
            members: (0..n).collect(),
            cuts: FastMap::default(),
            leader_order: vec![0],
            proposed_view: 0,
            evicted: false,
            my_sent: 0,
            sent_frames: BTreeMap::new(),
            lane_next: (0..n).map(|p| (p, 0)).collect(),
            origin: FastMap::default(),
            store: (0..n).map(|_| BTreeMap::new()).collect(),
            delivered_upto: vec![0; n],
            rr_round: 0,
            rr_idx: 0,
            ldr_idx: 0,
            ldr_seq: 0,
            row_push_seq: 0,
            hb_seen: vec![(0, SimTime::ZERO); n],
            suspected: vec![false; n],
            stab_seen: vec![0; n],
            committed_hdr: MsgHdr::ZERO,
            audit: Auditor::new(),
            app: Box::<DeliveryLog>::default(),
            delivered_count: 0,
            sent_data: 0,
            sent_nulls: 0,
            dropped_requests: 0,
            cfg,
        }
    }

    fn rowlen(n: usize) -> usize {
        (n + 1) * 8
    }

    // ---- inspection ---------------------------------------------------------

    /// Current members.
    pub fn members(&self) -> Vec<usize> {
        self.members.clone()
    }

    /// Current view id.
    pub fn view_id(&self) -> u32 {
        self.view_id
    }

    /// Whether this member has been configured out of the view.
    pub fn evicted(&self) -> bool {
        self.evicted
    }

    /// Total RDMA writes posted (for the 2-writes-per-message test).
    pub fn ep_writes_posted(&self) -> u64 {
        self.ep.writes_posted
    }

    /// The delivery log, when the default app is installed.
    pub fn delivery_log(&self) -> Option<&DeliveryLog> {
        abcast::app::app_as::<DeliveryLog>(self.app.as_ref())
    }

    /// The member currently allowed to send in `Leader` mode.
    pub fn current_sender(&self) -> usize {
        *self.members.iter().min().expect("empty view")
    }

    // ---- rows ---------------------------------------------------------------

    fn row_count(&self, node: usize, sender: usize) -> u64 {
        if node == self.me {
            return self.in_rings[sender].next_seq();
        }
        let off = (node * Self::rowlen(self.cfg.n) + sender * 8) as u32;
        u64::from_le_bytes(self.ep.read(self.row_region, off, 8).try_into().unwrap())
    }

    fn row_hb(&self, node: usize) -> u64 {
        let off = (node * Self::rowlen(self.cfg.n) + self.cfg.n * 8) as u32;
        u64::from_le_bytes(self.ep.read(self.row_region, off, 8).try_into().unwrap())
    }

    fn push_row(&mut self, ctx: &mut Ctx<DcWire>) {
        if self.evicted {
            return;
        }
        let n = self.cfg.n;
        self.row_push_seq += 1;
        let mut row = Vec::with_capacity(Self::rowlen(n));
        for s in 0..n {
            row.extend_from_slice(&self.in_rings[s].next_seq().to_le_bytes());
        }
        row.extend_from_slice(&self.row_push_seq.to_le_bytes());
        let off = (self.me * Self::rowlen(n)) as u32;
        self.ep.write_local(self.row_region, off, &row);
        let data = Bytes::from(row);
        for &m in &self.members.clone() {
            if m != self.me {
                let _ =
                    self.ep
                        .post_write(ctx, m, self.row_region, off, data.clone(), MsgKind::Ack);
            }
        }
    }

    /// Lifecycle span id of a frame — one covering-mark lane per sender
    /// (sender in the `ldr` field, so stability marks inherit down the
    /// sender's own sequence numbers).
    fn dspan(sender: usize, seq: u64) -> u64 {
        msg_span(0, sender as u32, seq as u32 + 1)
    }

    /// Messages from `sender` stable at every member (virtual synchrony's
    /// commit rule: min over ALL active members).
    fn stability(&self, sender: usize) -> u64 {
        self.members
            .iter()
            .map(|&m| self.row_count(m, sender))
            .min()
            .unwrap_or(0)
    }

    /// The member holding stability back: the argmin of the SST rows the
    /// stability min ranges over (ties toward the smaller member id).
    /// Returns the [`SpanStage::Quorum`] mark argument (member id + 1; 0
    /// when the view is empty).
    fn stability_straggler(&self, sender: usize) -> u64 {
        self.members
            .iter()
            .map(|&m| (self.row_count(m, sender), m))
            .min()
            .map_or(0, |(_, m)| m as u64 + 1)
    }

    // ---- sending -------------------------------------------------------------

    fn is_sender(&self) -> bool {
        match self.cfg.mode {
            Mode::Leader => self.current_sender() == self.me,
            Mode::AllSender => self.members.contains(&self.me),
        }
    }

    fn on_client_request(&mut self, ctx: &mut Ctx<DcWire>, from: NodeId, req: ClientReq) {
        if self.evicted || !self.is_sender() || self.sent_frames.len() >= self.cfg.max_backlog {
            self.dropped_requests += 1;
            return;
        }
        ctx.use_cpu_at(SpanStage::LeaderRecv, cpu::CLIENT_INGEST);
        ctx.span(
            Self::dspan(self.me, self.my_sent),
            SpanStage::LeaderRecv,
            client_span(from, req.id),
        );
        self.origin.insert(self.my_sent, (from, req.id));
        let body = Body::Data {
            client: from,
            id: req.id,
            payload: req.payload,
        };
        self.sent_frames.insert(self.my_sent, encode_body(&body));
        self.my_sent += 1;
        self.sent_data += 1;
        self.flush(ctx);
    }

    fn send_null(&mut self) {
        self.sent_frames
            .insert(self.my_sent, encode_body(&Body::Null));
        self.my_sent += 1;
        self.sent_nulls += 1;
    }

    fn flush(&mut self, ctx: &mut Ctx<DcWire>) {
        for m in self.members.clone() {
            let mut next = self.lane_next[&m];
            while next < self.my_sent {
                let frame = self.sent_frames[&next].clone();
                match self
                    .out_ring
                    .send_to(ctx, &mut self.ep, m, &frame, MsgKind::Payload)
                {
                    Ok(_) => {
                        if frame[0] == 1 {
                            ctx.span(Self::dspan(self.me, next), SpanStage::RingWrite, m as u64);
                        }
                        next += 1;
                    }
                    Err(_) => break,
                }
            }
            self.lane_next.insert(m, next);
        }
        // Prune frames every live lane has shipped.
        let min_next = self
            .members
            .iter()
            .map(|m| self.lane_next[m])
            .min()
            .unwrap_or(self.my_sent);
        while let Some((&k, _)) = self.sent_frames.first_key_value() {
            if k < min_next {
                self.sent_frames.remove(&k);
            } else {
                break;
            }
        }
    }

    /// Slot reuse at *global* stability (Derecho's rule, §4.1 of the paper).
    fn reuse_slots(&mut self) {
        let stab = self.stability(self.me);
        if stab == 0 {
            return;
        }
        for &m in &self.members {
            self.out_ring.ack(m, stab - 1);
        }
    }

    // ---- receiving / delivery ---------------------------------------------------

    fn drain_rings(&mut self, ctx: &mut Ctx<DcWire>) {
        for s in 0..self.cfg.n {
            for (seq, raw) in self.in_rings[s].poll(&mut self.ep) {
                ctx.use_cpu_at(SpanStage::FollowerAccept, cpu::FRAME_PROC);
                if let Some(body) = decode_body(raw) {
                    if seq >= self.delivered_upto[s] {
                        if matches!(body, Body::Data { .. }) {
                            ctx.span(
                                Self::dspan(s, seq),
                                SpanStage::FollowerAccept,
                                self.me as u64,
                            );
                        }
                        self.store[s].insert(seq, body);
                    }
                }
            }
        }
    }

    /// Announce stability advances as covering lifecycle marks. Stability is
    /// Derecho's quorum event — the SST min over all members — so one mark on
    /// the frontier frame stands for every frame below it (`AckVisible` and
    /// `Quorum` are [`SpanStage::covering`] stages).
    fn observe_stability(&mut self, ctx: &mut Ctx<DcWire>) {
        for s in 0..self.cfg.n {
            let stab = self.stability(s);
            if stab > self.stab_seen[s] {
                ctx.span(Self::dspan(s, stab - 1), SpanStage::AckVisible, 0);
                ctx.span(
                    Self::dspan(s, stab - 1),
                    SpanStage::Quorum,
                    self.stability_straggler(s),
                );
                self.stab_seen[s] = stab;
            }
        }
    }

    fn make_nulls(&mut self, ctx: &mut Ctx<DcWire>) {
        if self.cfg.mode != Mode::AllSender || self.evicted {
            return;
        }
        let maxc = self
            .members
            .iter()
            .map(|&s| {
                if s == self.me {
                    self.my_sent
                } else {
                    self.in_rings[s].next_seq()
                }
            })
            .max()
            .unwrap_or(0);
        let mut made = 0;
        while self.my_sent < maxc && made < self.cfg.max_nulls_per_poll {
            self.send_null();
            made += 1;
        }
        if made > 0 {
            self.flush(ctx);
        }
    }

    fn slot_ready(&self, sender: usize, seq: u64) -> Option<bool> {
        // Some(true) = deliver, Some(false) = excluded slot, None = wait.
        match self.cuts.get(&sender) {
            Some(&c) if seq >= c => Some(false),
            Some(_) => {
                if self.store[sender].contains_key(&seq) {
                    Some(true)
                } else {
                    None
                }
            }
            None => {
                if self.stability(sender) > seq {
                    Some(true)
                } else {
                    None
                }
            }
        }
    }

    fn deliver_loop(&mut self, ctx: &mut Ctx<DcWire>) {
        if self.evicted {
            return; // configured out: no longer part of the group's order
        }
        match self.cfg.mode {
            Mode::AllSender => self.deliver_all_sender(ctx),
            Mode::Leader => self.deliver_leader(ctx),
        }
    }

    fn deliver_all_sender(&mut self, ctx: &mut Ctx<DcWire>) {
        loop {
            // Senders participating in this round: alive, or dead with slots
            // left below their cut. The cut values are view-change constants,
            // so every member computes identical rounds.
            let senders: Vec<usize> = (0..self.cfg.n)
                .filter(|s| match self.cuts.get(s) {
                    Some(&c) => self.rr_round < c,
                    None => self.members.contains(s),
                })
                .collect();
            if senders.is_empty() {
                break;
            }
            if self.rr_idx >= senders.len() {
                self.rr_round += 1;
                self.rr_idx = 0;
                continue;
            }
            let s = senders[self.rr_idx];
            match self.slot_ready(s, self.rr_round) {
                Some(true) => {
                    let round = self.rr_round;
                    self.deliver_slot(ctx, s, round);
                    self.rr_idx += 1;
                }
                Some(false) => {
                    self.rr_idx += 1;
                }
                None => break,
            }
        }
    }

    fn deliver_leader(&mut self, ctx: &mut Ctx<DcWire>) {
        loop {
            let ldr = self.leader_order[self.ldr_idx];
            if let Some(&c) = self.cuts.get(&ldr) {
                if self.ldr_seq >= c {
                    if self.ldr_idx + 1 < self.leader_order.len() {
                        self.ldr_idx += 1;
                        self.ldr_seq = 0;
                        continue;
                    }
                    break;
                }
            }
            match self.slot_ready(ldr, self.ldr_seq) {
                Some(true) => {
                    let seq = self.ldr_seq;
                    self.deliver_slot(ctx, ldr, seq);
                    self.ldr_seq += 1;
                }
                _ => break,
            }
        }
    }

    fn deliver_slot(&mut self, ctx: &mut Ctx<DcWire>, sender: usize, seq: u64) {
        let body = self.store[sender]
            .remove(&seq)
            .expect("stable slot must be present");
        self.delivered_upto[sender] = seq + 1;
        if let Body::Data {
            client,
            id,
            payload,
        } = body
        {
            ctx.use_cpu_at(SpanStage::Deliver, DELIVER_COST);
            ctx.span(Self::dspan(sender, seq), SpanStage::Commit, 0);
            let hdr = match self.cfg.mode {
                Mode::AllSender => MsgHdr::new(Epoch::new(seq as u32, sender as u32), 1),
                Mode::Leader => MsgHdr::new(
                    Epoch::new(self.ldr_idx as u32, sender as u32),
                    seq as u32 + 1,
                ),
            };
            self.app.deliver(hdr, &payload);
            self.delivered_count += 1;
            self.committed_hdr = hdr;
            ctx.span(Self::dspan(sender, seq), SpanStage::Deliver, 0);
            ctx.count(simnet::Counter::Commits, 1);
            if sender == self.me && self.origin.remove(&seq).is_some() {
                ctx.send(
                    client,
                    DeliveryClass::Cpu,
                    RESP_WIRE,
                    DcWire::Resp(ClientResp { id }),
                );
            }
        }
    }

    // ---- view changes ----------------------------------------------------------

    fn detect_failures(&mut self, ctx: &mut Ctx<DcWire>) {
        if self.evicted {
            return;
        }
        let now = ctx.now();
        for &m in &self.members {
            if m == self.me {
                continue;
            }
            let hb = self.row_hb(m);
            if hb != self.hb_seen[m].0 {
                self.hb_seen[m] = (hb, now);
            } else if now.saturating_since(self.hb_seen[m].1) > self.cfg.view_timeout {
                self.suspected[m] = true;
            }
        }
        let dead: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&m| self.suspected[m])
            .collect();
        if dead.is_empty() {
            return;
        }
        let live: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&m| !self.suspected[m])
            .collect();
        if live.first() != Some(&self.me) || self.proposed_view > self.view_id {
            return; // not the proposer, or already proposed
        }
        // Propose the next view: cut each dead sender at the count *we*
        // received (safe: anything delivered anywhere is below it) and
        // forward our undelivered frames below the cut.
        let next_view = self.view_id + 1;
        self.proposed_view = next_view;
        let mut cuts = self.cuts.clone();
        let mut frames = Vec::new();
        for &d in &dead {
            let cut = self.in_rings[d].next_seq();
            cuts.insert(d, cut);
            for (&seq, body) in &self.store[d] {
                if seq < cut {
                    let data = match body {
                        Body::Null => None,
                        Body::Data {
                            client,
                            id,
                            payload,
                        } => Some((*client as u32, *id, payload.clone())),
                    };
                    frames.push((d as u32, seq, data));
                }
            }
        }
        let vc = ViewChange {
            view_id: next_view,
            members: live.iter().map(|&m| m as u32).collect(),
            cuts: cuts.iter().map(|(&s, &c)| (s as u32, c)).collect(),
            frames,
        };
        let wire = 64
            + vc.frames
                .iter()
                .map(|f| 16 + f.2.as_ref().map_or(0, |d| d.2.len()))
                .sum::<usize>();
        // Notify survivors and, as a courtesy, the evicted members (real
        // Derecho tells removed nodes to shut down and rejoin).
        for m in 0..self.cfg.n {
            if m != self.me {
                ctx.use_cpu(cpu::TCP_MSG);
                ctx.send(m, DeliveryClass::Cpu, wire as u32, DcWire::View(vc.clone()));
            }
        }
        self.apply_view(ctx, vc);
    }

    fn apply_view(&mut self, ctx: &mut Ctx<DcWire>, vc: ViewChange) {
        if vc.view_id <= self.view_id {
            return;
        }
        ctx.count(Counter::ViewChanges, 1);
        ctx.trace(
            Event::new("view_change")
                .a(u64::from(vc.view_id))
                .b(vc.members.len() as u64),
        );
        self.view_id = vc.view_id;
        self.members = vc.members.iter().map(|&m| m as usize).collect();
        self.members.sort_unstable();
        if !self.members.contains(&self.me) {
            self.evicted = true;
        }
        for (s, c) in vc.cuts {
            self.cuts.entry(s as usize).or_insert(c);
        }
        for (s, seq, data) in vc.frames {
            let s = s as usize;
            if seq >= self.delivered_upto[s] {
                let body = match data {
                    None => Body::Null,
                    Some((client, id, payload)) => Body::Data {
                        client: client as NodeId,
                        id,
                        payload,
                    },
                };
                self.store[s].entry(seq).or_insert(body);
            }
        }
        // Discard frames past the cut of now-dead senders.
        for (&s, &c) in &self.cuts {
            let drop: Vec<u64> = self.store[s].range(c..).map(|(&k, _)| k).collect();
            for k in drop {
                self.store[s].remove(&k);
            }
        }
        // Leader-mode succession.
        let low = self.current_sender();
        if self.leader_order.last() != Some(&low) {
            self.leader_order.push(low);
        }
        // Fresh heartbeat baseline so survivors are not instantly suspected.
        let now = ctx.now();
        for &m in &self.members.clone() {
            self.hb_seen[m] = (self.row_hb(m), now);
        }
    }

    /// Publish protocol-level gauge levels: view id as epoch, the worst
    /// received-but-undelivered backlog across sender lanes, and the fullest
    /// outbound ring lane's occupancy.
    fn publish_gauges(&mut self, ctx: &mut Ctx<DcWire>) {
        ctx.gauge(Gauge::Epoch, u64::from(self.view_id));
        let mut lag = 0u64;
        for s in 0..self.store.len() {
            if let Some(&top) = self.store[s].keys().next_back() {
                lag = lag.max((top + 1).saturating_sub(self.delivered_upto[s]));
            }
        }
        ctx.gauge(Gauge::CommitFrontierLag, lag);
        let mut occ = 0u64;
        for &m in &self.members {
            if m == self.me {
                continue;
            }
            occ = occ.max((self.cfg.ring_bytes as u64).saturating_sub(self.out_ring.free_space(m)));
        }
        ctx.gauge(Gauge::RingOccupancy, occ);
    }
}

impl Process<DcWire> for DerechoNode {
    fn on_start(&mut self, ctx: &mut Ctx<DcWire>) {
        let now = ctx.now();
        for m in 0..self.cfg.n {
            self.hb_seen[m] = (0, now);
        }
        ctx.set_timer(self.cfg.poll_interval, TOK_POLL);
        ctx.set_timer(self.cfg.row_push_interval, TOK_ROW);
    }

    fn on_message(&mut self, ctx: &mut Ctx<DcWire>, from: NodeId, msg: DcWire) {
        match msg {
            DcWire::Rdma(pkt) => self.ep.on_packet(ctx, from, pkt),
            DcWire::Req(req) => self.on_client_request(ctx, from, req),
            DcWire::View(vc) => {
                ctx.use_cpu(cpu::TCP_MSG);
                self.apply_view(ctx, vc);
            }
            DcWire::Resp(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<DcWire>, token: u64) {
        match token {
            TOK_POLL => {
                ctx.use_cpu_idle(cpu::POLL_IDLE);
                self.drain_rings(ctx);
                self.observe_stability(ctx);
                self.make_nulls(ctx);
                self.deliver_loop(ctx);
                self.reuse_slots();
                self.flush(ctx);
                self.detect_failures(ctx);
                // Audit: delivery happens only at SST stability, so the
                // delivery frontier is both the accept and commit point of
                // this one-sided protocol; delivered headers are monotone in
                // both sending modes, and the view id is the node's epoch.
                self.audit.observe(
                    ctx,
                    Epoch::new(self.view_id, 0),
                    self.committed_hdr,
                    self.committed_hdr,
                );
                self.publish_gauges(ctx);
                ctx.set_timer(self.cfg.poll_interval, TOK_POLL);
            }
            TOK_ROW => {
                self.push_row(ctx);
                ctx.set_timer(self.cfg.row_push_interval, TOK_ROW);
            }
            _ => {}
        }
    }
}
