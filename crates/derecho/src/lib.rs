//! # derecho — the virtual-synchrony baseline
//!
//! A performance-faithful reimplementation of Derecho's atomic multicast
//! (Jha et al., TOCS '19) over the same simulated RDMA fabric as Acuerdo, so
//! the §4.1 comparison isolates exactly the protocol-design differences the
//! paper discusses:
//!
//! * **Two RDMA writes per message** ([`rdma_prims::RingMode::Split`]): the
//!   data frame plus a separate per-pair message counter — for 10-byte
//!   messages that is twice Acuerdo's wire cost (§4.1's 2x bandwidth gap);
//! * **Commit at ALL active nodes** (virtual synchrony): a message is
//!   delivered once every member's published `nReceived` counter passed it,
//!   so the cluster runs at the speed of its slowest member;
//! * **Slot reuse only after global delivery**: a ring slot is reusable only
//!   once the message is stable at every member, magnifying the impact of a
//!   slow node;
//! * **SST stability rounds**: members publish their `nReceived` row
//!   periodically rather than immediately per batch;
//! * **Two modes** (§4 experiments): `Leader` (only the lowest-ranked member
//!   sends) and `AllSender` (round-robin total order with null messages
//!   filling idle slots — better aggregate bandwidth, worse small-message
//!   latency).
//!
//! Failures are handled with a simplified view-change: members heartbeat
//! through the shared state row; on suspicion the lowest live member proposes
//! the next view with a per-dead-sender *cut* (the count it received) and
//! forwards the undelivered frames below the cut. This reproduces virtual
//! synchrony's ragged-edge cleanup for a single failure at a time; Derecho's
//! full concurrent-failure protocol is out of scope for a baseline whose
//! benchmark role is stable-state performance (documented in DESIGN.md).

mod node;

pub use node::{DcWire, DerechoConfig, DerechoNode, Mode};

use abcast::{MsgHdr, Violation, WindowClient};
use bytes::Bytes;
use simnet::{NetParams, NodeId, Sim};
use std::time::Duration;

/// Build `cfg.n` replicas occupying simulation ids `0..n`.
pub fn build_cluster(sim: &mut Sim<DcWire>, cfg: &DerechoConfig) -> Vec<NodeId> {
    let mut ids = Vec::with_capacity(cfg.n);
    for me in 0..cfg.n {
        let id = sim.add_node(Box::new(DerechoNode::new(cfg.clone(), me)));
        assert_eq!(id, me, "replicas must occupy ids 0..n");
        ids.push(id);
    }
    ids
}

/// Cluster plus a window client. In `Leader` mode the client aims at member
/// 0; in `AllSender` mode it spreads requests round-robin over all members.
pub fn cluster_with_client(
    seed: u64,
    cfg: &DerechoConfig,
    window: usize,
    payload: usize,
    warmup: Duration,
) -> (Sim<DcWire>, Vec<NodeId>, NodeId) {
    let mut sim = Sim::new(seed, NetParams::rdma());
    let ids = build_cluster(&mut sim, cfg);
    let mut client = WindowClient::<DcWire>::new(0, window, payload, warmup);
    if cfg.mode == Mode::AllSender {
        client.targets = ids.clone();
    }
    let cid = sim.add_node(Box::new(client));
    (sim, ids, cid)
}

/// Delivery histories of live, non-evicted replicas. A member configured
/// out of the view is outside the virtual-synchrony contract from the moment
/// of eviction (it must rejoin with a state transfer), so its history is not
/// part of the group's order.
pub fn histories(sim: &Sim<DcWire>, ids: &[NodeId]) -> Vec<Vec<(MsgHdr, Bytes)>> {
    ids.iter()
        .filter(|&&id| !sim.is_crashed(id) && !sim.node::<DerechoNode>(id).evicted())
        .map(|&id| {
            sim.node::<DerechoNode>(id)
                .delivery_log()
                .expect("DeliveryLog app")
                .entries
                .clone()
        })
        .collect()
}

/// Check the §2.2 properties across live replicas.
pub fn check_cluster(sim: &Sim<DcWire>, ids: &[NodeId]) -> Result<(), Violation> {
    abcast::check_histories(&histories(sim, ids), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    fn run(
        mode: Mode,
        n: usize,
        window: usize,
        payload: usize,
        ms: u64,
        seed: u64,
    ) -> (Sim<DcWire>, Vec<NodeId>, NodeId) {
        let cfg = DerechoConfig {
            n,
            mode,
            ..DerechoConfig::default()
        };
        let (mut sim, ids, client) =
            cluster_with_client(seed, &cfg, window, payload, Duration::from_millis(2));
        sim.run_until(SimTime::from_millis(ms));
        (sim, ids, client)
    }

    #[test]
    fn leader_mode_commits_and_totally_orders() {
        let (sim, ids, client) = run(Mode::Leader, 3, 8, 10, 10, 3);
        check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<DcWire>>(client).result();
        assert!(r.completed > 100, "completed {}", r.completed);
        for &id in &ids {
            assert!(sim.node::<DerechoNode>(id).delivered_count > 0);
        }
    }

    #[test]
    fn all_sender_mode_commits_and_totally_orders() {
        let (sim, ids, client) = run(Mode::AllSender, 3, 9, 10, 10, 4);
        check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<DcWire>>(client).result();
        assert!(r.completed > 100, "completed {}", r.completed);
        // All three replicas actually sent data.
        for &id in &ids {
            assert!(sim.node::<DerechoNode>(id).sent_data > 0, "node {id} idle");
        }
    }

    #[test]
    fn leader_mode_latency_is_worse_than_acuerdo() {
        // The §4.1 claim: Derecho-leader ≥ ~19us vs Acuerdo ~10us for small
        // messages on 3 nodes.
        let (sim, ids, client) = run(Mode::Leader, 3, 1, 10, 10, 5);
        check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<DcWire>>(client).result();
        let lat = r.latency.mean_us();
        println!("derecho-leader 3n/10B window 1: {lat:.2} us");
        assert!(lat > 14.0, "derecho latency {lat}us suspiciously low");
        assert!(lat < 60.0, "derecho latency {lat}us too high");
    }

    #[test]
    fn split_ring_doubles_write_count() {
        let (sim, ids, _client) = run(Mode::Leader, 3, 8, 10, 10, 6);
        let n0 = sim.node::<DerechoNode>(ids[0]);
        // Leader posts ≥ 2 writes per message per receiver (data + counter).
        assert!(n0.sent_data > 0);
        let per_msg = n0.ep_writes_posted() as f64 / (n0.sent_data as f64 * (ids.len() as f64));
        assert!(per_msg >= 2.0, "writes per message per receiver {per_msg}");
    }

    #[test]
    fn member_crash_triggers_view_change_and_progress_resumes() {
        let cfg = DerechoConfig {
            n: 3,
            mode: Mode::Leader,
            view_timeout: Duration::from_micros(500),
            ..DerechoConfig::default()
        };
        let (mut sim, ids, client) = cluster_with_client(7, &cfg, 8, 10, Duration::ZERO);
        sim.node_mut::<WindowClient<DcWire>>(client).retransmit = Some(Duration::from_millis(2));
        sim.run_until(SimTime::from_millis(3));
        // Crash a follower: virtual synchrony must reconfigure it out.
        sim.crash(2);
        sim.run_until(SimTime::from_millis(10));
        let before = sim.node::<DerechoNode>(0).delivered_count;
        sim.run_until(SimTime::from_millis(20));
        let after = sim.node::<DerechoNode>(0).delivered_count;
        assert!(after > before, "no progress after view change");
        assert_eq!(sim.node::<DerechoNode>(0).members(), vec![0, 1]);
        check_cluster(&sim, &ids).unwrap();
    }

    #[test]
    fn leader_crash_fails_over_to_next_member() {
        let cfg = DerechoConfig {
            n: 3,
            mode: Mode::Leader,
            view_timeout: Duration::from_micros(500),
            ..DerechoConfig::default()
        };
        let (mut sim, ids, client) = cluster_with_client(8, &cfg, 4, 10, Duration::ZERO);
        sim.node_mut::<WindowClient<DcWire>>(client).retransmit = Some(Duration::from_millis(2));
        sim.run_until(SimTime::from_millis(3));
        sim.crash(0);
        sim.run_until(SimTime::from_millis(10));
        // Repoint the client at the new sender.
        sim.node_mut::<WindowClient<DcWire>>(client).targets = vec![1];
        let before = sim.node::<DerechoNode>(1).delivered_count;
        sim.run_until(SimTime::from_millis(25));
        let after = sim.node::<DerechoNode>(1).delivered_count;
        assert!(after > before, "new leader made no progress");
        check_cluster(&sim, &ids).unwrap();
    }

    #[test]
    fn slow_member_slows_the_whole_cluster() {
        // The anti-property vs Acuerdo: virtual synchrony runs at the
        // slowest member's speed.
        let mk = |slow: bool| {
            let cfg = DerechoConfig {
                n: 3,
                mode: Mode::Leader,
                // Long timeout so the slow node is NOT reconfigured out.
                view_timeout: Duration::from_secs(10),
                ..DerechoConfig::default()
            };
            let (mut sim, ids, client) =
                cluster_with_client(9, &cfg, 8, 10, Duration::from_millis(2));
            if slow {
                sim.set_desched(
                    2,
                    simnet::DeschedProfile {
                        mean_interval: Duration::from_micros(300),
                        min_pause: Duration::from_micros(100),
                        max_pause: Duration::from_micros(200),
                    },
                );
            }
            sim.run_until(SimTime::from_millis(15));
            check_cluster(&sim, &ids).unwrap();
            sim.node::<WindowClient<DcWire>>(client).result()
        };
        let fast = mk(false);
        let slow = mk(true);
        println!(
            "derecho fast {:.2}us vs slow-member {:.2}us",
            fast.latency.mean_us(),
            slow.latency.mean_us()
        );
        assert!(
            slow.latency.mean_us() > fast.latency.mean_us() * 1.5,
            "slow member should hurt derecho: {} vs {}",
            slow.latency.mean_us(),
            fast.latency.mean_us()
        );
    }
}
