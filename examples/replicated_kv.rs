//! The §4.3 application use case: a hash table replicated over Acuerdo.
//!
//! ```text
//! cargo run --release --example replicated_kv
//! ```
//!
//! Update commands (YCSB-load: 100% zipfian-keyed sets) are broadcast
//! through the Acuerdo instance and applied to every replica's table copy at
//! commit; reads then go directly to any replica, bypassing broadcast — the
//! RDMA-get path.

use acuerdo_repro::abcast::{app::app_as, WindowClient};
use acuerdo_repro::acuerdo::{cluster_with_client, AcWire, AcuerdoConfig, AcuerdoNode};
use acuerdo_repro::kvstore::{ReplicatedMap, YcsbLoad};
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

fn main() {
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, replicas, client) =
        cluster_with_client(7, &cfg, /*window*/ 64, 0, Duration::from_millis(1));

    // Install the replicated hash table on every replica and the YCSB-load
    // generator on the client.
    for &r in &replicas {
        sim.node_mut::<AcuerdoNode>(r).app = Box::<ReplicatedMap>::default();
    }
    sim.node_mut::<WindowClient<AcWire>>(client).payload_fn =
        Some(YcsbLoad::new(7).into_payload_fn());

    sim.run_until(SimTime::from_millis(30));

    let result = sim.node::<WindowClient<AcWire>>(client).result();
    println!("YCSB-load on 3 replicas:");
    println!(
        "  {:.0} ops/s, mean latency {:.1} us",
        result.msgs_per_sec(),
        result.latency.mean_us()
    );

    // All replicas converged to the same table.
    let tables: Vec<&ReplicatedMap> = replicas
        .iter()
        .map(|&r| app_as::<ReplicatedMap>(sim.node::<AcuerdoNode>(r).app.as_ref()).unwrap())
        .collect();
    println!(
        "  applied ops per replica: {:?}",
        tables.iter().map(|t| t.applied).collect::<Vec<_>>()
    );
    // State-machine replication: any two replicas that applied the same
    // number of committed ops hold byte-identical tables.
    for (i, a) in tables.iter().enumerate() {
        for (j, b) in tables.iter().enumerate().skip(i + 1) {
            if a.applied == b.applied {
                assert_eq!(a.map.len(), b.map.len(), "replicas {i} and {j} diverged");
                for (k, v) in &a.map {
                    assert_eq!(
                        b.map.get(k),
                        Some(v),
                        "replicas {i} and {j} diverged on {k:?}"
                    );
                }
            }
        }
    }
    println!(
        "  table sizes: {:?}",
        tables.iter().map(|t| t.map.len()).collect::<Vec<_>>()
    );

    // Direct read from a follower replica (bypasses broadcast).
    let hot_key = tables[0]
        .map
        .keys()
        .next()
        .cloned()
        .expect("table not empty");
    let follower = replicas[1];
    let val = app_as::<ReplicatedMap>(sim.node::<AcuerdoNode>(follower).app.as_ref())
        .unwrap()
        .get(&hot_key);
    println!(
        "  direct get({}) at replica {follower}: {} bytes",
        String::from_utf8_lossy(&hot_key),
        val.map(|v| v.len()).unwrap_or(0)
    );
}
