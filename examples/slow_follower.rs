//! The paper's central performance claim, side by side (§3, §4.1).
//!
//! ```text
//! cargo run --release --example slow_follower
//! ```
//!
//! One follower suffers periodic multi-hundred-microsecond scheduler pauses.
//! Acuerdo commits at the speed of its fastest quorum and simply lets the
//! slow follower catch up from its ring backlog (receiver-side batching);
//! Derecho's virtual synchrony commits only when *all* members acknowledged,
//! so the same slow node drags the whole cluster down.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
use acuerdo_repro::derecho::{self, DcWire, DerechoConfig, Mode};
use acuerdo_repro::simnet::{DeschedProfile, SimTime};
use std::time::Duration;

const SLOW: DeschedProfile = DeschedProfile {
    mean_interval: Duration::from_micros(300),
    min_pause: Duration::from_micros(100),
    max_pause: Duration::from_micros(250),
};

fn acuerdo_run(slow: bool) -> (f64, f64) {
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, ids, client) =
        acuerdo::cluster_with_client(3, &cfg, 8, 10, Duration::from_millis(2));
    if slow {
        sim.set_desched(2, SLOW);
    }
    sim.run_until(SimTime::from_millis(20));
    acuerdo::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<AcWire>>(client).result();
    (r.latency.mean_us(), r.msgs_per_sec())
}

fn derecho_run(slow: bool) -> (f64, f64) {
    let cfg = DerechoConfig {
        n: 3,
        mode: Mode::Leader,
        // Long view timeout: the slow member stays in the view, as a
        // transiently-slow node would.
        view_timeout: Duration::from_secs(10),
        ..DerechoConfig::default()
    };
    let (mut sim, ids, client) =
        derecho::cluster_with_client(3, &cfg, 8, 10, Duration::from_millis(2));
    if slow {
        sim.set_desched(2, SLOW);
    }
    sim.run_until(SimTime::from_millis(20));
    derecho::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<DcWire>>(client).result();
    (r.latency.mean_us(), r.msgs_per_sec())
}

fn main() {
    println!(
        "3 replicas, window 8, 10-byte messages; follower 2 descheduled 100-250us every ~300us\n"
    );
    let (al0, at0) = acuerdo_run(false);
    let (al1, at1) = acuerdo_run(true);
    let (dl0, dt0) = derecho_run(false);
    let (dl1, dt1) = derecho_run(true);

    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "system", "clean", "slow member", "slowdown"
    );
    println!(
        "{:<18} {:>11.1} us {:>11.1} us {:>11.2}x",
        "acuerdo latency",
        al0,
        al1,
        al1 / al0
    );
    println!(
        "{:<18} {:>11.1} us {:>11.1} us {:>11.2}x",
        "derecho latency",
        dl0,
        dl1,
        dl1 / dl0
    );
    println!(
        "{:<18} {:>8.0} msg/s {:>8.0} msg/s {:>11.2}x",
        "acuerdo tput",
        at0,
        at1,
        at0 / at1
    );
    println!(
        "{:<18} {:>8.0} msg/s {:>8.0} msg/s {:>11.2}x",
        "derecho tput",
        dt0,
        dt1,
        dt0 / dt1
    );
    println!();
    println!("acuerdo runs at the speed of its fastest quorum; virtual synchrony");
    println!("runs at the speed of its slowest member.");
    assert!(
        dl1 / dl0 > (al1 / al0) * 1.3,
        "demo invariant: derecho hurt more"
    );
}
