//! Leader failure and Acuerdo's up-to-date election (§3.3–3.4).
//!
//! ```text
//! cargo run --release --example leader_failover
//! ```
//!
//! Crashes the leader mid-stream. The remaining replicas elect an
//! *up-to-date* leader through the Vote SST — no post-election state
//! transfer — and the new leader opens its epoch with a diff message. The
//! example prints the measured downtime (suspicion → diffs transferred) and
//! verifies no committed message was lost.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{
    check_cluster, cluster_with_client, current_leader, AcWire, AcuerdoConfig, AcuerdoNode,
};
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

fn main() {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(5)
    };
    let (mut sim, replicas, client) = cluster_with_client(21, &cfg, 16, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));

    // Phase 1: normal broadcast.
    sim.run_until(SimTime::from_millis(5));
    let old_leader = current_leader(&sim, &replicas).expect("initial leader");
    let committed_before = sim.node::<AcuerdoNode>(1).delivered_count;
    println!("phase 1: leader {old_leader} committed {committed_before} messages");

    // Phase 2: kill the leader.
    println!("phase 2: crashing leader {old_leader} at t = {}", sim.now());
    sim.crash(old_leader);
    sim.run_until(SimTime::from_millis(15));

    let new_leader = current_leader(&sim, &replicas).expect("a new leader");
    let node = sim.node::<AcuerdoNode>(new_leader);
    println!(
        "phase 3: replica {new_leader} won epoch {:?} ({} election span(s) recorded)",
        node.epoch(),
        node.election_spans.len()
    );
    for (detected, ready) in &node.election_spans {
        println!(
            "  suspicion at {detected}, diffs transferred by {ready} -> downtime {:.3} ms",
            ready.saturating_since(*detected).as_secs_f64() * 1e3
        );
    }

    // Phase 3: client repoints (its retransmit path replays in-flight ids).
    sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![new_leader];
    sim.run_until(SimTime::from_millis(40));

    let committed_after = sim.node::<AcuerdoNode>(new_leader).delivered_count;
    println!("phase 4: new epoch committed up to {committed_after} deliveries");
    assert!(
        committed_after > committed_before,
        "no post-failover progress"
    );

    // Nothing committed was lost; all live replicas agree on one order.
    check_cluster(&sim, &replicas).expect("no committed message lost or reordered");
    println!("verified: every committed message survived the failover in order");
}
