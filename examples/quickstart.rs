//! Quickstart: a 3-replica Acuerdo group committing client messages.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the cluster inside the deterministic simulator, drives 500
//! broadcasts through a closed-loop client, verifies the atomic-broadcast
//! properties, and prints per-message latency statistics.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{
    check_cluster, cluster_with_client, current_leader, AcWire, AcuerdoConfig, AcuerdoNode,
};
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

fn main() {
    // Three replicas (tolerating one crash fault), booted into a stable
    // epoch led by replica 0, plus a window-8 client.
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, replicas, client) = cluster_with_client(
        /*seed*/ 1,
        &cfg,
        /*window*/ 8,
        /*payload*/ 10,
        Duration::ZERO,
    );

    // Stop after 500 committed-and-acknowledged messages.
    sim.node_mut::<WindowClient<AcWire>>(client).halt_after = Some(500);
    sim.run_until(SimTime::from_secs(1));

    let leader = current_leader(&sim, &replicas).expect("a unique leader");
    println!(
        "leader: replica {leader}, epoch {:?}",
        sim.node::<AcuerdoNode>(leader).epoch()
    );

    let result = sim.node::<WindowClient<AcWire>>(client).result();
    println!("committed messages : {}", result.completed);
    println!("mean commit latency: {:.2} us", result.latency.mean_us());
    println!("p99  commit latency: {:.2} us", result.latency.p99_us());
    println!("throughput         : {:.0} msgs/s", result.msgs_per_sec());

    // Every replica delivered the same totally-ordered prefix.
    check_cluster(&sim, &replicas).expect("Integrity, No-Duplication, Total Order");
    for &r in &replicas {
        let n = sim.node::<AcuerdoNode>(r);
        println!(
            "replica {r}: delivered {} messages, committed through {:?}",
            n.delivered_count,
            n.committed()
        );
    }
    println!("atomic-broadcast properties verified across all replicas");
}
