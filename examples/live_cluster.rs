//! The same Acuerdo state machines, on real OS threads.
//!
//! ```text
//! cargo run --release --example live_cluster
//! ```
//!
//! Everything else in this repository drives the protocol deterministically
//! through the discrete-event engine. This example runs the *identical*
//! `AcuerdoNode` code on the threaded fabric — one thread per replica plus a
//! client thread pumping requests through crossbeam channels — and verifies
//! the atomic-broadcast properties on the histories afterwards. It is the
//! "sans-IO means it" demonstration and the starting point for porting the
//! protocol onto a real RDMA transport.

use acuerdo_repro::abcast::{check_histories, WindowClient};
use acuerdo_repro::acuerdo::{AcWire, AcuerdoConfig, AcuerdoNode};
use acuerdo_repro::simnet::ThreadedRunner;
use std::time::Duration;

fn main() {
    let n = 3;
    let cfg = AcuerdoConfig {
        // Thread scheduling is far noisier than a busy-polled core: relax
        // the poll cadence and the failure detector accordingly.
        poll_interval: Duration::from_micros(100),
        commit_push_interval: Duration::from_micros(500),
        fail_timeout: Duration::from_millis(250),
        ..AcuerdoConfig::stable(n)
    };

    let mut runner: ThreadedRunner<AcWire> = ThreadedRunner::new();
    for me in 0..n {
        let id = runner.add_node(Box::new(AcuerdoNode::new(cfg.clone(), me)));
        assert_eq!(id, me);
    }
    let client = runner.add_node(Box::new(WindowClient::<AcWire>::new(
        0,
        16,
        10,
        Duration::from_millis(20),
    )));

    println!("running {n} Acuerdo replicas + 1 client on real threads for 400 ms ...");
    runner.start();
    std::thread::sleep(Duration::from_millis(400));
    let nodes = runner.stop();

    let result = ThreadedRunner::node_as::<WindowClient<AcWire>>(&nodes, client)
        .expect("client")
        .result();
    println!(
        "client: {} committed, mean latency {:.1} us (wall clock, channel transport)",
        result.completed,
        result.latency.mean_us()
    );
    assert!(result.completed > 100, "live cluster barely committed");

    let histories: Vec<_> = (0..n)
        .map(|id| {
            ThreadedRunner::node_as::<AcuerdoNode>(&nodes, id)
                .expect("replica")
                .delivery_log()
                .expect("DeliveryLog app")
                .entries
                .clone()
        })
        .collect();
    for (id, h) in histories.iter().enumerate() {
        println!("replica {id}: delivered {} messages", h.len());
    }
    check_histories(&histories, None).expect("Integrity / No-Dup / Total Order");
    println!("atomic-broadcast properties verified on the threaded fabric");
}
