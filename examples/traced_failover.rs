//! A traced leader-pause election: watch a failover on the virtual-time
//! timeline.
//!
//! ```text
//! cargo run --release --example traced_failover
//! ```
//!
//! Runs a 3-replica Acuerdo cluster with tracing enabled, descheduled the
//! leader long enough to force an election, and dumps the whole run as
//! `traced_failover.json` — open it at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) to see the heartbeat misses, the election instants,
//! the new leader's diff transfer, and the NIC/CPU spans underneath them.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{
    check_cluster, cluster_with_client, current_leader, AcWire, AcuerdoConfig, AcuerdoNode,
};
use acuerdo_repro::simnet::{chrome_trace_json, Counter, SimTime};
use std::time::Duration;

fn main() {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    };
    let (mut sim, replicas, client) = cluster_with_client(21, &cfg, 16, 10, Duration::ZERO);
    sim.set_tracing(true);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));

    // Normal broadcast, then deschedule the leader (a GC pause, not a crash:
    // it wakes up later and finds itself deposed).
    sim.run_until(SimTime::from_millis(2));
    let old_leader = current_leader(&sim, &replicas).expect("initial leader");
    println!("pausing leader {old_leader} for 5 ms at t = {}", sim.now());
    sim.pause_at(old_leader, sim.now(), Duration::from_millis(5));

    // Step until a different leader has emerged. While the old leader is
    // descheduled it still *believes* it leads, so an unambiguous answer
    // only appears once it wakes, sees the higher epoch, and steps down.
    let deadline = SimTime::from_millis(15);
    loop {
        sim.run_for(Duration::from_millis(1));
        match current_leader(&sim, &replicas) {
            Some(l) if l != old_leader => break,
            _ => assert!(sim.now() < deadline, "no new leader by {deadline}"),
        }
    }

    let new_leader = current_leader(&sim, &replicas).expect("a new leader");
    assert_ne!(new_leader, old_leader, "election did not move the lead");
    let node = sim.node::<AcuerdoNode>(new_leader);
    println!("replica {new_leader} won epoch {:?}", node.epoch());
    for (detected, ready) in &node.election_spans {
        println!(
            "  suspicion at {detected}, diffs transferred by {ready} -> downtime {:.3} ms",
            ready.saturating_since(*detected).as_secs_f64() * 1e3
        );
    }

    // Repoint the client and let the new epoch make progress.
    sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![new_leader];
    sim.run_for(Duration::from_millis(5));
    check_cluster(&sim, &replicas).expect("no committed message lost or reordered");

    // What the counters saw.
    for &id in &replicas {
        println!(
            "node {id}: {} commits, {} elections ({} won), {} heartbeat misses, {} sst pushes",
            sim.counter(id, Counter::Commits),
            sim.counter(id, Counter::Elections),
            sim.counter(id, Counter::ElectionsWon),
            sim.counter(id, Counter::HeartbeatMisses),
            sim.counter(id, Counter::SstPushes),
        );
    }

    // Dump the timeline.
    let json = chrome_trace_json(sim.trace_events());
    let path = "traced_failover.json";
    std::fs::write(path, &json).expect("write timeline");
    println!(
        "wrote {path} ({} events, {} bytes) - open it at https://ui.perfetto.dev",
        sim.trace_events().len(),
        json.len()
    );
}
