//! Property-based tests over the §2.2 atomic-broadcast properties.
//!
//! Random seeds, loads, payload sizes, and fault schedules; the invariant is
//! always the same: every live replica delivers a prefix of one common
//! total order, with no duplicates and no invented messages.

use acuerdo_repro::abcast::{self, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
use acuerdo_repro::simnet::SimTime;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

fn run_acuerdo(
    seed: u64,
    n: usize,
    window: usize,
    payload: usize,
    crash_at_ms: Option<(usize, u64)>,
    ms: u64,
) -> Result<(), TestCaseError> {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(n)
    };
    let (mut sim, ids, client) =
        acuerdo::cluster_with_client(seed, &cfg, window, payload, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    if let Some((victim, at)) = crash_at_ms {
        sim.crash_at(victim, SimTime::from_millis(at));
    }
    sim.run_until(SimTime::from_millis(ms));

    // If a follower (not the leader) crashed, progress must continue; if the
    // leader crashed the client keeps aiming at it, so we only check safety.
    let histories = acuerdo::histories(&sim, &ids);
    // Integrity: payloads embed the client request id; every delivered
    // payload must decode to an id the client actually allocated.
    let sent: HashSet<bytes::Bytes> = (0..1_000_000u64)
        .take_while(|&i| i < sim.node::<WindowClient<AcWire>>(client).total_sent_upper())
        .map(|i| abcast::workload::payload(i, payload))
        .collect();
    abcast::check_histories(&histories, Some(&sent))
        .map_err(|v| TestCaseError::fail(format!("violation: {v:?}")))?;
    Ok(())
}

/// Test-only view of how many ids the client may have used.
trait SentUpper {
    fn total_sent_upper(&self) -> u64;
}
impl SentUpper for WindowClient<AcWire> {
    fn total_sent_upper(&self) -> u64 {
        // ids are allocated sequentially; total_completed + in-flight bounds
        // the universe tightly enough for integrity checking.
        self.total_completed + self.in_flight() as u64 + 64
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, ..ProptestConfig::default()
    })]

    #[test]
    fn stable_runs_satisfy_atomic_broadcast(
        seed in 0u64..10_000,
        window in 1usize..64,
        payload in prop_oneof![Just(1usize), Just(10), Just(100), Just(1000)],
    ) {
        run_acuerdo(seed, 3, window, payload, None, 8)?;
    }

    #[test]
    fn follower_crash_preserves_properties(
        seed in 0u64..10_000,
        victim in 1usize..3,
        at in 1u64..5,
    ) {
        run_acuerdo(seed, 3, 8, 10, Some((victim, at)), 12)?;
    }

    #[test]
    fn leader_crash_preserves_properties(
        seed in 0u64..10_000,
        at in 1u64..5,
    ) {
        run_acuerdo(seed, 3, 8, 10, Some((0, at)), 15)?;
    }

    #[test]
    fn five_replicas_random_crash(
        seed in 0u64..10_000,
        victim in 0usize..5,
        at in 1u64..6,
    ) {
        run_acuerdo(seed, 5, 16, 10, Some((victim, at)), 15)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// The checker itself: random mutations of a valid history set must be
    /// caught (meta-test of the §2.2 oracle).
    #[test]
    fn checker_catches_random_mutations(
        len in 3usize..40,
        node in 0usize..3,
        pos_frac in 0.0f64..1.0,
        kind in 0u8..3,
    ) {
        use acuerdo_repro::abcast::{check_histories, Epoch, MsgHdr};
        use bytes::Bytes;
        let mk = |c: u32| (MsgHdr::new(Epoch::new(1, 0), c), abcast::workload::payload(u64::from(c), 10));
        let base: Vec<_> = (1..=len as u32).map(mk).collect();
        let mut hs = vec![base.clone(), base.clone(), base];
        let pos = ((len as f64 * pos_frac) as usize).min(len - 1);
        match kind {
            0 => { // duplicate an entry
                let e = hs[node][pos].clone();
                hs[node].push(e);
            }
            1 => { // divergent payload
                hs[node][pos].1 = Bytes::from_static(b"mutated!!!");
            }
            _ => { // gap: drop a middle entry (only meaningful if not a suffix)
                if pos + 1 >= hs[node].len() {
                    // dropping the last element is a legal prefix; skip
                    return Ok(());
                }
                hs[node].remove(pos);
            }
        }
        prop_assert!(check_histories(&hs, None).is_err(), "mutation not caught");
    }
}
