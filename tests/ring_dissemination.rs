//! Ring dissemination (ROADMAP item 3): the chain topology must preserve
//! every star-mode guarantee while collapsing the leader's O(n) egress to
//! O(1) per message.
//!
//! The battery proves four things:
//! * commits flow around the chain and every replica converges on the same
//!   delivery history (smoke + cluster check),
//! * determinism survives the forwarding hop — traced and untraced runs are
//!   byte-identical at the metrics-snapshot level, and replays reproduce,
//! * the forensics contract holds with the extra hop: every outlier's blame
//!   vector still sums *exactly* to its measured commit latency,
//! * the whole point — at the 64-node scale-study operating point the ring
//!   leader sends less than 40% of the star leader's egress bytes while
//!   committing at least 1.5x as many messages.

use acuerdo_repro::abcast::{blame, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig, AcuerdoNode, DisseminationMode};
use acuerdo_repro::simnet::{Counter, MetricsSnapshot, SimTime};
use std::time::Duration;

fn ring_cfg(n: usize) -> AcuerdoConfig {
    AcuerdoConfig {
        dissemination: DisseminationMode::Ring,
        ..AcuerdoConfig::stable(n)
    }
}

/// Run an `n`-replica ring-mode cluster for `ms` simulated milliseconds and
/// return (delivery histories, completed requests, metrics).
fn ring_run(
    seed: u64,
    n: usize,
    payload: usize,
    window: usize,
    ms: u64,
    traced: bool,
) -> (
    Vec<Vec<(acuerdo_repro::abcast::MsgHdr, bytes::Bytes)>>,
    u64,
    MetricsSnapshot,
) {
    let (mut sim, ids, client) =
        acuerdo::cluster_with_client(seed, &ring_cfg(n), window, payload, Duration::ZERO);
    sim.set_tracing(traced);
    sim.run_until(SimTime::from_millis(ms));
    acuerdo::check_cluster(&sim, &ids).expect("ring cluster check");
    let completed = sim.node::<WindowClient<AcWire>>(client).total_completed;
    let h = acuerdo::histories(&sim, &ids);
    let m = sim.metrics();
    (h, completed, m)
}

#[test]
fn ring_smoke_commits_and_forwards() {
    // 5 nodes: the leader streams to exactly one successor; nodes 1..3
    // forward (node 3's successor-of-successor is the origin, so node 3 is
    // the last forwarder). Every replica must deliver the same prefix.
    let (h, completed, m) = ring_run(7, 5, 10, 8, 5, false);
    assert!(completed > 200, "only {completed} commits in ring mode");
    for (i, hist) in h.iter().enumerate() {
        assert!(!hist.is_empty(), "replica {i} delivered nothing");
    }
    // Chain actually carried the frames: forwards happened, and the
    // fault-free run never fell back to star fan-out nor dropped dupes.
    assert!(m.total(Counter::RingForwards) > 0);
    assert_eq!(m.total(Counter::RingFallbackSends), 0);
    assert_eq!(m.total(Counter::RingDupDrops), 0);
}

#[test]
fn ring_mode_traced_and_untraced_runs_are_byte_identical() {
    // The event recorder only observes; the forwarding hop must not leak
    // tracing state into the execution. Strongest cheap statement: the whole
    // metrics document (every counter, gauge extreme, forensics record on
    // every node) renders the same bytes with tracing on and off, and a
    // replay reproduces it.
    let (h1, c1, m1) = ring_run(42, 5, 64, 8, 5, true);
    let (h2, c2, m2) = ring_run(42, 5, 64, 8, 5, false);
    assert_eq!(c1, c2, "tracing changed completion count");
    assert_eq!(h1, h2, "tracing changed delivery histories");
    assert_eq!(m1.to_json(), m2.to_json(), "tracing changed the metrics");
    let (h3, c3, m3) = ring_run(42, 5, 64, 8, 5, false);
    assert_eq!(c2, c3, "replay diverged");
    assert_eq!(h2, h3, "replay diverged");
    assert_eq!(m2.to_json(), m3.to_json(), "replay diverged");
}

#[test]
fn ring_outlier_blame_still_sums_exactly() {
    // The forwarder stamps a RingWrite mark on every hop; blame telescopes
    // over whatever marks are present, so the decomposition must stay exact
    // (zero slack) with the extra stage in the path.
    let (_, _, m) = ring_run(21, 5, 10, 8, 8, false);
    let f = &m.forensics;
    assert!(!f.outliers.is_empty(), "outlier ring stayed empty");
    for rec in &f.outliers {
        let b = blame(rec).expect("finalized outlier must be blameable");
        assert_eq!(
            b.total_ns(),
            rec.latency_ns,
            "blame vector does not sum to the measured latency in ring mode"
        );
    }
}

#[test]
fn ring_collapses_leader_egress_at_64_nodes() {
    // The scale-study operating point (16 KiB payloads, window 8): in star
    // mode the leader serialises 63 copies of every payload and its NIC is
    // the committed bottleneck (113% requested utilization in the
    // baseline). The chain must cut the leader's egress below 40% of star
    // while committing at least 1.5x as many messages.
    let run = |mode: DisseminationMode| {
        let cfg = AcuerdoConfig {
            dissemination: mode,
            ..AcuerdoConfig::stable(64)
        };
        let (mut sim, ids, client) =
            acuerdo::cluster_with_client(42, &cfg, 8, 16384, Duration::ZERO);
        sim.run_until(SimTime::from_millis(4));
        acuerdo::check_cluster(&sim, &ids).expect("cluster check");
        let completed = sim.node::<WindowClient<AcWire>>(client).total_completed;
        let leader_tx = sim.metrics().res.nodes[0].tx.total_bytes();
        (completed, leader_tx)
    };
    let (star_done, star_tx) = run(DisseminationMode::Star);
    let (ring_done, ring_tx) = run(DisseminationMode::Ring);
    assert!(star_done > 0 && ring_done > 0);
    assert!(
        (ring_tx as f64) < 0.40 * star_tx as f64,
        "ring leader egress {ring_tx} B is not under 40% of star {star_tx} B"
    );
    assert!(
        ring_done as f64 >= 1.5 * star_done as f64,
        "ring committed {ring_done}, star {star_done}: no 1.5x win"
    );
}

#[test]
fn ring_survives_mid_chain_crash_via_star_fallback() {
    // Crash a mid-chain node while traffic flows: the leader must bridge the
    // broken segment (star fallback for the crashed node's successor side)
    // and commits must keep flowing — quorum never includes the dead node.
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..ring_cfg(5)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(11, &cfg, 8, 10, Duration::ZERO);
    sim.crash_at(2, SimTime::from_millis(2));
    sim.run_until(SimTime::from_millis(10));
    acuerdo::check_cluster(&sim, &ids).expect("cluster check after crash");
    let before = sim.node::<WindowClient<AcWire>>(client).total_completed;
    assert!(before > 0);
    // Fallback lanes engaged for the segment downstream of the dead node.
    assert!(
        sim.counter(0, Counter::RingFallbackSends) > 0,
        "leader never bridged the broken chain segment"
    );
    // Survivors past the break kept delivering.
    for &id in &ids {
        if id == 2 {
            continue;
        }
        assert!(
            sim.node::<AcuerdoNode>(id).delivered_count > 0,
            "survivor {id} starved after the chain broke"
        );
    }
}
