//! The resource-utilization layer: per-link byte accounting and CPU-time
//! attribution are always-on plain-array adds, so (a) turning tracing on
//! must not change a single accounted byte or nanosecond, (b) two runs of
//! the same seed must render byte-identical `"util"` summaries, and (c) on
//! a hand-built schedule with no NIC contention, link busy time is exactly
//! `frames x serialize_time(wire_bytes)` and utilization is exactly
//! `busy / elapsed`.

use acuerdo_repro::bench::{self, util, RunSpec, System};
use acuerdo_repro::simnet::{
    Ctx, DeliveryClass, MsgKind, NetParams, NodeId, Process, Sim, SimTime,
};

#[derive(Clone, Debug)]
struct Blob;

/// Sends `sends` payload frames of `wire` bytes to `peer` at time zero.
struct Talker {
    peer: NodeId,
    sends: u32,
    wire: u32,
}

impl Process<Blob> for Talker {
    fn on_start(&mut self, ctx: &mut Ctx<Blob>) {
        for _ in 0..self.sends {
            ctx.send_kind(
                self.peer,
                DeliveryClass::Dma,
                self.wire,
                MsgKind::Payload,
                Blob,
            );
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<Blob>, _from: NodeId, _msg: Blob) {}
}

struct Mute;

impl Process<Blob> for Mute {
    fn on_message(&mut self, _ctx: &mut Ctx<Blob>, _from: NodeId, _msg: Blob) {}
}

#[test]
fn link_utilization_is_exactly_bytes_times_byte_time_over_elapsed() {
    let params = NetParams::rdma();
    let mut sim = Sim::new(7, params);
    let a = sim.add_node(Box::new(Talker {
        peer: 1,
        sends: 10,
        wire: 1_000,
    }));
    let b = sim.add_node(Box::new(Mute));
    sim.run_until(SimTime::from_millis(1));

    // 25 Gb/s is 0.32 ns/byte: one 1000-byte frame serializes in 320 ns,
    // and with a single sender there is no egress contention, so each of
    // the 10 frames contributes exactly one serialization time.
    let ser = params.nic.serialize_time(1_000).as_nanos() as u64;
    assert_eq!(ser, 320);

    let res = sim.metrics().res;
    assert_eq!(res.elapsed_ns, 1_000_000);
    let link = res
        .links
        .iter()
        .find(|l| l.src == a && l.dst == b)
        .expect("the only directed link with traffic");
    assert_eq!(link.stats.bytes[MsgKind::Payload as usize], 10_000);
    assert_eq!(link.stats.frames[MsgKind::Payload as usize], 10);
    assert_eq!(link.stats.total_bytes(), 10_000);
    assert_eq!(link.stats.busy_ns, 10 * ser);

    // The node-level egress view mirrors the node's single outbound link,
    // and the receiver's ingress saw the same serialization time.
    assert_eq!(res.nodes[a].tx.busy_ns, 10 * ser);
    assert_eq!(res.nodes[a].tx.total_bytes(), 10_000);
    assert_eq!(res.nodes[b].rx.bytes[MsgKind::Payload as usize], 10_000);

    // The rendered summary shows exactly busy/elapsed to one digit:
    // 3200 / 1_000_000 = 0.32% -> "0.3".
    let s = util::summary_json(&res, 2);
    assert!(
        s.contains("\"top_links\":[{\"src\":0,\"dst\":1,\"bytes\":10000,\"util_pct\":0.3}]"),
        "summary: {s}"
    );
    // No process charged CPU, so attribution stays all-zero.
    assert!(
        s.contains("\"cpu_ns\":{") && s.contains("\"total\":0}"),
        "summary: {s}"
    );
}

/// One full metrics record (the suite/sidecar JSON object) for an acuerdo
/// point at a fixed seed, traced or untraced.
fn acuerdo_record(traced: bool) -> String {
    let spec = RunSpec::quick(System::Acuerdo);
    let (point, metrics) = if traced {
        // Event recording on, gauge sampler off: the sampler writes the
        // sampled NIC-depth *level* into the gauge (a pre-existing, documented
        // observer artifact), which would make the `gauges` member an unfair
        // comparison. Resource accounting itself is always-on either way.
        let obs = bench::Observe {
            traced: true,
            ..bench::Observe::default()
        };
        let (p, m, _events, _gauges) =
            bench::run_broadcast_observed(System::Acuerdo, 3, 64, 8, 42, spec, obs);
        (p, m)
    } else {
        bench::run_broadcast_metrics(System::Acuerdo, 3, 64, 8, 42, spec)
    };
    bench::run_record_json("zp", "acuerdo", 3, 64, 42, spec, &point, &metrics, None)
}

#[test]
fn tracing_does_not_perturb_the_utilization_record() {
    // Byte-identical documents: the event recorder only observes; bytes,
    // frames, busy windows and CPU charges are accounted on the same code
    // path either way.
    assert_eq!(acuerdo_record(false), acuerdo_record(true));
}

#[test]
fn gauge_sampling_does_not_perturb_the_util_member() {
    // The fully traced surface (recorder + gauge sampler, what `--trace-out`
    // bins run) must still leave the resource-utilization summary untouched.
    let spec = RunSpec::quick(System::Acuerdo);
    let (_, plain) = bench::run_broadcast_metrics(System::Acuerdo, 3, 64, 8, 42, spec);
    let (_, sampled, _events, _gauges) =
        bench::run_broadcast_traced(System::Acuerdo, 3, 64, 8, 42, spec);
    assert_eq!(
        util::summary_json(&plain.res, 3),
        util::summary_json(&sampled.res, 3)
    );
}

#[test]
fn utilization_summaries_are_byte_identical_across_runs() {
    assert_eq!(acuerdo_record(false), acuerdo_record(false));

    // Same determinism through a TCP baseline (different kind/CPU mapping).
    let spec = RunSpec {
        warmup: std::time::Duration::from_millis(2),
        measure: std::time::Duration::from_millis(10),
    };
    let run = || {
        let (_, m) = bench::run_broadcast_metrics(System::Etcd, 3, 64, 8, 9, spec);
        util::summary_json(&m.res, 3)
    };
    assert_eq!(run(), run());
}
