//! Chaos at scale: the seeded fault harness on clusters far larger than the
//! 5-replica default. A small pinned seed set keeps this a smoke test — the
//! point is that safety checking, post-quiescence convergence, and the online
//! invariant auditor all still hold up when the membership (and therefore the
//! ring fabric, quorum sizes, and fault schedules) grows to 16 and 32 nodes.
//!
//! Broad seed sweeps stay in the `chaos` bin (`--nodes N --seeds K`); these
//! tests pin exact (proto, seed, n) triples so a failure is a one-line repro.

use acuerdo_repro::bench::audit_fired;
use acuerdo_repro::bench::chaos::{run_chaos_at, Proto};
use acuerdo_repro::simnet::SimTime;

const HORIZON_MS: u64 = 20;

/// Run one pinned chaos scenario and assert the full verdict: no safety
/// violation, every live replica covered the pre-fault commit point, and the
/// online auditor stayed silent.
fn assert_clean(proto: Proto, seed: u64, n: usize) {
    let r = run_chaos_at(proto, seed, SimTime::from_millis(HORIZON_MS), n);
    assert!(
        !r.fatal(),
        "{} seed {seed} n={n}: safety violation {:?} (repro: {})",
        proto.name(),
        r.safety,
        r.repro()
    );
    assert!(
        r.converged,
        "{} seed {seed} n={n}: live replicas stalled at [{}..{}] behind pre-fault {} (repro: {})",
        proto.name(),
        r.final_min,
        r.final_max,
        r.pre_fault_commits,
        r.repro()
    );
    assert!(
        !audit_fired(&r.metrics),
        "{} seed {seed} n={n}: online invariant auditor fired on a run the \
         offline checker passed",
        proto.name()
    );
}

#[test]
fn chaos_sixteen_nodes_two_seeds() {
    // Two distinct schedules: different fault mixes against a 16-node ring.
    assert_clean(Proto::Acuerdo, 3, 16);
    assert_clean(Proto::Acuerdo, 11, 16);
}

#[test]
fn chaos_sixteen_nodes_derecho_sized_rings() {
    // Derecho at 16 nodes exercises `DerechoConfig::sized` (the scale-aware
    // ring schedule) under faults, not just in the clean-path sweep.
    assert_clean(Proto::Derecho, 3, 16);
}

#[test]
fn chaos_thirty_two_nodes() {
    // One 32-node schedule: ring sizing drops a tier (256 KiB) and the
    // quorum math runs over a membership 6x the default.
    assert_clean(Proto::Acuerdo, 7, 32);
}
