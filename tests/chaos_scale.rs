//! Chaos at scale: the seeded fault harness on clusters far larger than the
//! 5-replica default. A small pinned seed set keeps this a smoke test — the
//! point is that safety checking, post-quiescence convergence, and the online
//! invariant auditor all still hold up when the membership (and therefore the
//! ring fabric, quorum sizes, and fault schedules) grows to 16 and 32 nodes.
//!
//! Broad seed sweeps stay in the `chaos` bin (`--nodes N --seeds K`); these
//! tests pin exact (proto, seed, n) triples so a failure is a one-line repro.

use acuerdo_repro::acuerdo::DisseminationMode;
use acuerdo_repro::bench::audit_fired;
use acuerdo_repro::bench::chaos::{run_chaos_at, run_chaos_opts, ChaosOpts, Fault, Proto, Tier};
use acuerdo_repro::simnet::{DurabilityMode, SimTime};

const HORIZON_MS: u64 = 20;

/// Run one pinned chaos scenario and assert the full verdict: no safety
/// violation, every live replica covered the pre-fault commit point, and the
/// online auditor stayed silent.
fn assert_clean(proto: Proto, seed: u64, n: usize) {
    let r = run_chaos_at(proto, seed, SimTime::from_millis(HORIZON_MS), n);
    assert!(
        !r.fatal(),
        "{} seed {seed} n={n}: safety violation {:?} (repro: {})",
        proto.name(),
        r.safety,
        r.repro()
    );
    assert!(
        r.converged,
        "{} seed {seed} n={n}: live replicas stalled at [{}..{}] behind pre-fault {} (repro: {})",
        proto.name(),
        r.final_min,
        r.final_max,
        r.pre_fault_commits,
        r.repro()
    );
    assert!(
        !audit_fired(&r.metrics),
        "{} seed {seed} n={n}: online invariant auditor fired on a run the \
         offline checker passed",
        proto.name()
    );
}

#[test]
fn chaos_sixteen_nodes_two_seeds() {
    // Two distinct schedules: different fault mixes against a 16-node ring.
    assert_clean(Proto::Acuerdo, 3, 16);
    assert_clean(Proto::Acuerdo, 11, 16);
}

#[test]
fn chaos_sixteen_nodes_derecho_sized_rings() {
    // Derecho at 16 nodes exercises `DerechoConfig::sized` (the scale-aware
    // ring schedule) under faults, not just in the clean-path sweep.
    assert_clean(Proto::Derecho, 3, 16);
}

#[test]
fn chaos_thirty_two_nodes() {
    // One 32-node schedule: ring sizing drops a tier (256 KiB) and the
    // quorum math runs over a membership 6x the default.
    assert_clean(Proto::Acuerdo, 7, 32);
}

/// Run one pinned chaos scenario under **ring dissemination** and assert the
/// same full verdict as [`assert_clean`]; returns the report so callers can
/// additionally assert on the fault mix the seed produced.
fn assert_clean_ring(
    seed: u64,
    n: usize,
    tier: Tier,
    durability: DurabilityMode,
) -> acuerdo_repro::bench::chaos::ChaosReport {
    let opts = ChaosOpts {
        n,
        tier,
        durability,
        dissemination: DisseminationMode::Ring,
        ..ChaosOpts::new(Proto::Acuerdo, seed, SimTime::from_millis(HORIZON_MS))
    };
    let (r, _, _) = run_chaos_opts(&opts);
    assert!(
        !r.fatal(),
        "ring seed {seed} n={n}: violation {:?}/{:?} (repro: {})",
        r.safety,
        r.durability_violation,
        r.repro()
    );
    assert!(
        r.converged,
        "ring seed {seed} n={n}: live replicas stalled at [{}..{}] behind pre-fault {} (repro: {})",
        r.final_min,
        r.final_max,
        r.pre_fault_commits,
        r.repro()
    );
    assert!(
        !audit_fired(&r.metrics),
        "ring seed {seed} n={n}: online invariant auditor fired on a run the \
         offline checker passed"
    );
    // The repro command round-trips the topology, so a failing ring seed
    // re-runs as a ring seed.
    assert!(r.repro().contains("--dissemination ring"), "{}", r.repro());
    r
}

#[test]
fn chaos_ring_sixteen_nodes_crash_mid_forward() {
    // A 16-node chain with crashes landing while frames are in flight along
    // the forward path: the leader must bridge the dead segment star-style
    // and hand back to the healed chain after the rejoin.
    let has_crash = |r: &acuerdo_repro::bench::chaos::ChaosReport| {
        r.schedule
            .faults
            .iter()
            .any(|tf| matches!(tf.fault, Fault::Crash { .. }))
    };
    let a = assert_clean_ring(3, 16, Tier::Basic, DurabilityMode::Volatile);
    let b = assert_clean_ring(11, 16, Tier::Basic, DurabilityMode::Volatile);
    assert!(
        has_crash(&a) || has_crash(&b),
        "neither pinned 16-node seed crashed a replica; the scenario lost its point"
    );
}

#[test]
fn chaos_ring_thirty_two_nodes_partition_splits_chain() {
    // At 32 nodes the basic-tier schedule mixes partitions in: a partition
    // across the chain severs every forward path crossing the cut, the
    // worst case for hop-by-hop dissemination.
    let r = assert_clean_ring(7, 32, Tier::Basic, DurabilityMode::Volatile);
    assert!(
        !r.schedule.faults.is_empty(),
        "seed 7 at 32 nodes generated no faults; pick a different pin"
    );
}

#[test]
fn chaos_ring_sixteen_nodes_crash_during_recovery_durable() {
    // Correlated tier, durable logs: reboots land while earlier reboots are
    // still replaying their WAL, with frames arriving over the chain rather
    // than a leader lane. Every committed entry must resurface.
    assert_clean_ring(5, 16, Tier::Correlated, DurabilityMode::Durable);
}
