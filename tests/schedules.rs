//! Systematic schedule exploration: instead of sampling random fault
//! schedules (tests/properties.rs), sweep a grid of fault times and victims
//! so every phase of the protocol gets hit — mid-broadcast, mid-commit,
//! mid-election, during catch-up. Every run must satisfy the §2.2
//! properties.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{self, check_cluster, AcWire, AcuerdoConfig, AcuerdoNode};
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

fn cfg3() -> AcuerdoConfig {
    AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    }
}

#[test]
fn crash_grid_every_victim_every_phase() {
    // Crash each replica at 250 µs steps across the first 3 ms of a loaded
    // run: this lands crashes during ring fills, SST pushes, commits, and
    // (for repeated leaders) during diff transfers.
    for victim in 0..3usize {
        for step in 1..=12u64 {
            let at = SimTime::from_nanos(step * 250_000);
            let (mut sim, ids, client) =
                acuerdo::cluster_with_client(1_000 + step, &cfg3(), 16, 10, Duration::ZERO);
            sim.node_mut::<WindowClient<AcWire>>(client).retransmit =
                Some(Duration::from_millis(2));
            sim.crash_at(victim, at);
            sim.run_until(SimTime::from_millis(12));
            check_cluster(&sim, &ids).unwrap_or_else(|v| {
                panic!("victim {victim} at {at}: {v:?}");
            });
            // With a follower crashed the quorum keeps going; with the
            // leader crashed an election must have happened.
            if victim != 0 {
                let leader = sim.node::<AcuerdoNode>(0);
                assert!(
                    leader.delivered_count > 100,
                    "victim {victim} at {at}: quorum stalled ({} delivered)",
                    leader.delivered_count
                );
            }
        }
    }
}

#[test]
fn pause_grid_leader_during_every_phase() {
    // Deschedule (don't crash) the leader at each step; it must always
    // rejoin the new epoch as a follower and the cluster must stay
    // consistent.
    for step in 1..=8u64 {
        let at = SimTime::from_nanos(step * 300_000);
        let (mut sim, ids, client) =
            acuerdo::cluster_with_client(2_000 + step, &cfg3(), 8, 10, Duration::ZERO);
        sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
        sim.pause_at(0, at, Duration::from_millis(3));
        sim.run_until(SimTime::from_millis(15));
        check_cluster(&sim, &ids).unwrap_or_else(|v| panic!("pause at {at}: {v:?}"));
        let old = sim.node::<AcuerdoNode>(0);
        let e1 = sim.node::<AcuerdoNode>(1).epoch();
        assert_eq!(
            old.epoch(),
            e1,
            "pause at {at}: old leader stuck in old epoch"
        );
    }
}

#[test]
fn double_fault_grid_five_replicas() {
    // Two crashes at staggered offsets on a 5-replica group (f = 2): all
    // combinations of (first victim, gap) with the second victim chosen as
    // whoever leads afterwards.
    for first in [0usize, 2, 4] {
        for gap_ms in [2u64, 5] {
            let cfg = AcuerdoConfig {
                fail_timeout: Duration::from_micros(400),
                ..AcuerdoConfig::stable(5)
            };
            let (mut sim, ids, client) =
                acuerdo::cluster_with_client(3_000 + first as u64, &cfg, 8, 10, Duration::ZERO);
            sim.node_mut::<WindowClient<AcWire>>(client).retransmit =
                Some(Duration::from_millis(2));
            sim.crash_at(first, SimTime::from_millis(1));
            sim.run_until(SimTime::from_millis(1 + gap_ms));
            // Crash whichever node leads now (exercises back-to-back
            // elections when the first victim was the leader).
            let second = acuerdo::current_leader(&sim, &ids).unwrap_or((first + 1) % 5);
            if second != first {
                sim.crash(second);
            }
            sim.run_until(SimTime::from_millis(25));
            if let Some(leader) = acuerdo::current_leader(&sim, &ids) {
                sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![leader];
            }
            sim.run_until(SimTime::from_millis(40));
            check_cluster(&sim, &ids).unwrap_or_else(|v| {
                panic!("first {first}, gap {gap_ms}ms, second {second}: {v:?}")
            });
            let survivor = ids
                .iter()
                .find(|&&id| !sim.is_crashed(id))
                .copied()
                .expect("3 survivors");
            assert!(
                sim.node::<AcuerdoNode>(survivor).delivered_count > 0,
                "no progress with 3-of-5"
            );
        }
    }
}

#[test]
fn transient_link_delay_grid() {
    // Sweep transient one-way delays over every leader→follower link at
    // several magnitudes; the quorum path must keep the run consistent and
    // the cluster must never elect spuriously (delays are below the fail
    // timeout's effect because SST heartbeats keep flowing).
    for dst in 1..3usize {
        for delay_us in [50u64, 150, 400] {
            let (mut sim, ids, _client) =
                acuerdo::cluster_with_client(4_000 + delay_us, &cfg3(), 8, 10, Duration::ZERO);
            sim.add_link_latency(
                0,
                dst,
                Duration::from_micros(delay_us),
                SimTime::from_millis(6),
            );
            sim.run_until(SimTime::from_millis(12));
            check_cluster(&sim, &ids)
                .unwrap_or_else(|v| panic!("dst {dst}, delay {delay_us}us: {v:?}"));
            for &id in &ids {
                assert_eq!(
                    sim.node::<AcuerdoNode>(id).elections_won,
                    0,
                    "dst {dst}, delay {delay_us}us: spurious election"
                );
            }
        }
    }
}
