//! Systematic fault injection across the Acuerdo stack: sequential leader
//! failures, transient descheduling, link delays, and the ring-backlog
//! catch-up path (§3's "efficient catch-up").

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::acuerdo::{
    self, check_cluster, current_leader, AcWire, AcuerdoConfig, AcuerdoNode, Role,
};
use acuerdo_repro::simnet::{Counter, DeschedProfile, SimTime};
use std::time::Duration;

fn fast_failover_cfg(n: usize) -> AcuerdoConfig {
    AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(n)
    }
}

#[test]
fn two_sequential_leader_failures_with_five_replicas() {
    // n = 5 tolerates f = 2: kill whoever leads, twice.
    let cfg = fast_failover_cfg(5);
    let (mut sim, ids, client) = acuerdo::cluster_with_client(77, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));

    sim.run_until(SimTime::from_millis(3));
    let l1 = current_leader(&sim, &ids).expect("first leader");
    sim.crash(l1);
    sim.run_until(SimTime::from_millis(12));
    let l2 = current_leader(&sim, &ids).expect("second leader");
    assert_ne!(l2, l1);
    sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![l2];
    sim.run_until(SimTime::from_millis(18));
    sim.crash(l2);
    sim.run_until(SimTime::from_millis(30));
    let l3 = current_leader(&sim, &ids).expect("third leader");
    assert!(l3 != l1 && l3 != l2);
    sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![l3];

    let before = sim.node::<AcuerdoNode>(l3).delivered_count;
    sim.run_until(SimTime::from_millis(45));
    let after = sim.node::<AcuerdoNode>(l3).delivered_count;
    assert!(after > before, "no progress with 3-of-5 quorum");
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn paused_leader_recovers_as_follower() {
    // The Table 1 scenario: the leader is descheduled (not crashed), a new
    // leader takes over, and the old one rejoins the new epoch when it
    // wakes.
    let cfg = fast_failover_cfg(3);
    let (mut sim, ids, client) = acuerdo::cluster_with_client(78, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    sim.run_until(SimTime::from_millis(3));
    sim.pause_at(0, SimTime::from_millis(3), Duration::from_millis(10));
    // While node 0 is descheduled it still *believes* it leads; a unique
    // leader only exists again once it wakes (13ms) and accepts the new
    // epoch's diff.
    sim.run_until(SimTime::from_millis(20));
    let new_leader = current_leader(&sim, &ids).expect("replacement leader");
    assert_ne!(new_leader, 0);
    let old = sim.node::<AcuerdoNode>(0);
    assert_eq!(old.role(), Role::Follower, "old leader failed to rejoin");
    assert_eq!(old.epoch(), sim.node::<AcuerdoNode>(new_leader).epoch());
    sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![new_leader];
    let delivered_at_rejoin = sim.node::<AcuerdoNode>(0).delivered_count;
    sim.run_until(SimTime::from_millis(30));
    assert!(
        sim.node::<AcuerdoNode>(0).delivered_count > delivered_at_rejoin,
        "rejoined follower stopped delivering"
    );
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn descheduled_follower_catches_up_from_ring_backlog() {
    // §3: a node that falls behind drains its ring in receiver-determined
    // batches and catches up, because the CPU processes messages faster than
    // the network delivers them.
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, ids, _client) = acuerdo::cluster_with_client(79, &cfg, 32, 10, Duration::ZERO);
    sim.run_until(SimTime::from_millis(2));
    sim.pause_at(2, SimTime::from_millis(2), Duration::from_millis(3));
    // Measure just before the wake-up at 5ms.
    sim.run_until(SimTime::from_micros(4_900));
    let lag_at_wake = {
        let leader = sim.node::<AcuerdoNode>(0).delivered_count;
        let lagger = sim.node::<AcuerdoNode>(2).delivered_count;
        leader.saturating_sub(lagger)
    };
    assert!(
        lag_at_wake > 100,
        "pause should create a backlog: {lag_at_wake}"
    );
    // Within a couple of milliseconds the lagger has drained the backlog to
    // within a commit-push interval of the leader.
    sim.run_until(SimTime::from_millis(8));
    let leader = sim.node::<AcuerdoNode>(0).delivered_count;
    let lagger = sim.node::<AcuerdoNode>(2).delivered_count;
    assert!(
        leader.saturating_sub(lagger) < lag_at_wake / 4,
        "no catch-up: {leader} vs {lagger} (was {lag_at_wake} behind)"
    );
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn transient_link_delay_does_not_stall_quorum() {
    // 200us of extra latency on the leader→follower-2 link: the quorum
    // (leader + follower 1) keeps committing at full speed.
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, ids, client) =
        acuerdo::cluster_with_client(80, &cfg, 8, 10, Duration::from_millis(1));
    sim.add_link_latency(0, 2, Duration::from_micros(200), SimTime::from_millis(10));
    sim.run_until(SimTime::from_millis(15));
    let r = sim.node::<WindowClient<AcWire>>(client).result();
    assert!(
        r.latency.mean_us() < 60.0,
        "transient delay leaked into quorum latency: {}us",
        r.latency.mean_us()
    );
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn election_with_all_followers_slow_still_terminates() {
    // Every surviving node is long-latency: the election takes longer but
    // must still converge (the fixed-point argument of §3.3).
    let cfg = fast_failover_cfg(3);
    let (mut sim, ids, client) = acuerdo::cluster_with_client(81, &cfg, 4, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(5));
    sim.set_timer_jitter(1, Duration::from_millis(1));
    sim.set_timer_jitter(2, Duration::from_millis(1));
    sim.run_until(SimTime::from_millis(4));
    sim.crash(0);
    sim.run_until(SimTime::from_millis(60));
    let leader = current_leader(&sim, &ids).expect("election must terminate");
    assert_ne!(leader, 0);
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn repeated_elections_never_lose_committed_messages() {
    // Churn: pause each successive leader; after every failover, everything
    // committed before must still be in every live replica's history.
    let cfg = fast_failover_cfg(3);
    let (mut sim, ids, client) = acuerdo::cluster_with_client(82, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    let mut min_committed = 0u64;
    for round in 0..4 {
        sim.run_for(Duration::from_millis(5));
        let Some(leader) = current_leader(&sim, &ids) else {
            continue;
        };
        let committed_now = sim.node::<AcuerdoNode>(leader).delivered_count;
        assert!(
            committed_now >= min_committed,
            "round {round}: commits went backwards"
        );
        min_committed = committed_now;
        sim.node_mut::<WindowClient<AcWire>>(client).targets = vec![leader];
        sim.pause_at(leader, sim.now(), Duration::from_millis(8));
        sim.run_for(Duration::from_millis(10));
        check_cluster(&sim, &ids).unwrap();
    }
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn derecho_view_change_under_load_keeps_total_order() {
    use acuerdo_repro::derecho::{self, DcWire, DerechoConfig, Mode};
    let cfg = DerechoConfig {
        n: 3,
        mode: Mode::AllSender,
        view_timeout: Duration::from_micros(500),
        ..DerechoConfig::default()
    };
    let (mut sim, ids, client) = derecho::cluster_with_client(83, &cfg, 9, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<DcWire>>(client).retransmit = Some(Duration::from_millis(2));
    sim.run_until(SimTime::from_millis(3));
    sim.crash(1);
    sim.run_until(SimTime::from_millis(8));
    // Client stops aiming at the dead member.
    sim.node_mut::<WindowClient<DcWire>>(client).targets = vec![0, 2];
    sim.run_until(SimTime::from_millis(20));
    derecho::check_cluster(&sim, &ids).unwrap();
    let n0 = sim.node::<acuerdo_repro::derecho::DerechoNode>(0);
    assert_eq!(n0.members(), vec![0, 2]);
}

#[test]
fn slow_node_descheduling_storm_acuerdo_vs_derecho() {
    // Heavier variant of the examples/slow_follower demo, asserted.
    let profile = DeschedProfile {
        mean_interval: Duration::from_micros(250),
        min_pause: Duration::from_micros(150),
        max_pause: Duration::from_micros(300),
    };
    // Acuerdo.
    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, ids, client) =
        acuerdo::cluster_with_client(84, &cfg, 8, 10, Duration::from_millis(1));
    sim.set_desched(2, profile);
    sim.run_until(SimTime::from_millis(12));
    check_cluster(&sim, &ids).unwrap();
    let ac = sim.node::<WindowClient<AcWire>>(client).result();
    // Derecho.
    use acuerdo_repro::derecho::{self as d, DcWire, DerechoConfig, Mode};
    let dcfg = DerechoConfig {
        n: 3,
        mode: Mode::Leader,
        view_timeout: Duration::from_secs(10),
        ..DerechoConfig::default()
    };
    let (mut dsim, dids, dclient) =
        d::cluster_with_client(84, &dcfg, 8, 10, Duration::from_millis(1));
    dsim.set_desched(2, profile);
    dsim.run_until(SimTime::from_millis(12));
    d::check_cluster(&dsim, &dids).unwrap();
    let dc = dsim.node::<WindowClient<DcWire>>(dclient).result();

    assert!(
        ac.msgs_per_sec() > dc.msgs_per_sec() * 2.0,
        "quorum protocol should shrug off the slow node: acuerdo {} vs derecho {}",
        ac.msgs_per_sec(),
        dc.msgs_per_sec()
    );
}

#[test]
fn minority_partition_then_heal_keeps_total_order_acuerdo() {
    // Cut replicas {3,4} off from the majority (and the client), let the
    // quorum keep committing, then heal: the minority must catch back up and
    // every live history must still be totally ordered.
    let cfg = fast_failover_cfg(5);
    let (mut sim, ids, client) = acuerdo::cluster_with_client(90, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    sim.partition(
        vec![vec![3, 4], vec![0, 1, 2, client]],
        SimTime::from_millis(4),
    );
    sim.heal(SimTime::from_millis(12));
    sim.run_until(SimTime::from_micros(11_900));
    let majority_at_heal = sim.node::<AcuerdoNode>(0).delivered_count;
    let minority_at_heal = sim.node::<AcuerdoNode>(3).delivered_count;
    assert!(
        majority_at_heal > minority_at_heal + 100,
        "partition did not isolate the minority: {majority_at_heal} vs {minority_at_heal}"
    );
    sim.run_until(SimTime::from_millis(28));
    for &id in &[3usize, 4] {
        assert!(
            sim.node::<AcuerdoNode>(id).delivered_count > majority_at_heal,
            "node {id} never caught up past the partition point"
        );
    }
    let drops: u64 = ids
        .iter()
        .map(|&id| sim.counter(id, Counter::PartitionDrops))
        .sum();
    assert!(drops > 0, "partition dropped nothing");
    check_cluster(&sim, &ids).unwrap();
}

#[test]
fn minority_partition_then_heal_keeps_total_order_raft() {
    use acuerdo_repro::raft::{self, RaftConfig, RaftNode, RfWire};
    let cfg = RaftConfig {
        n: 5,
        ..RaftConfig::default()
    };
    let (mut sim, ids, client) =
        raft::cluster_with_client(91, &cfg, 4, 10, Duration::from_millis(5));
    sim.node_mut::<WindowClient<RfWire>>(client).retransmit = Some(Duration::from_millis(10));
    sim.partition(
        vec![vec![3, 4], vec![0, 1, 2, client]],
        SimTime::from_millis(40),
    );
    sim.heal(SimTime::from_millis(90));
    sim.run_until(SimTime::from_micros(89_900));
    let majority_at_heal = sim.node::<RaftNode>(0).delivered_count;
    sim.run_until(SimTime::from_millis(200));
    for &id in &[3usize, 4] {
        assert!(
            sim.node::<RaftNode>(id).delivered_count > majority_at_heal,
            "raft node {id} never caught up past the partition point"
        );
    }
    raft::check_cluster(&sim, &ids).unwrap();
}

#[test]
fn crashed_leader_restarts_and_rejoins_via_multipart_diff() {
    // The rebooted ex-leader comes back with an empty log and must be
    // re-seeded from the first entry via the rejoin diff — forced here to
    // span several parts by shrinking `max_diff_part` far below the log size.
    let cfg = AcuerdoConfig {
        retain_log: true,
        max_diff_part: 256,
        ..fast_failover_cfg(3)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(92, &cfg, 8, 10, Duration::ZERO);
    acuerdo::enable_restarts(&mut sim, &cfg, &ids);
    {
        let c = sim.node_mut::<WindowClient<AcWire>>(client);
        c.retransmit = Some(Duration::from_millis(2));
        c.replicas = ids.clone();
    }
    sim.run_until(SimTime::from_millis(3));
    let old_leader = current_leader(&sim, &ids).expect("initial leader");
    let committed_before_crash = sim.node::<AcuerdoNode>(old_leader).delivered_count;
    assert!(committed_before_crash > 100, "no load before the crash");
    sim.crash(old_leader);
    sim.restart_at(old_leader, SimTime::from_millis(4));
    sim.run_until(SimTime::from_millis(20));

    let new_leader = current_leader(&sim, &ids).expect("replacement leader");
    assert_ne!(new_leader, old_leader);
    let rejoined = sim.node::<AcuerdoNode>(old_leader);
    assert_eq!(
        rejoined.role(),
        Role::Follower,
        "ex-leader failed to rejoin"
    );
    assert!(
        rejoined.delivered_count >= committed_before_crash,
        "rejoin diff did not re-seed the full log: {} < {}",
        rejoined.delivered_count,
        committed_before_crash
    );
    // The whole history came through the diff path, in several parts.
    let snap = sim.metrics();
    assert_eq!(snap.total(Counter::Restarts), 1);
    assert!(
        snap.total(Counter::RejoinDiffBytes) > cfg.max_diff_part as u64,
        "rejoin diff was not multi-part: {} bytes <= {} per part",
        snap.total(Counter::RejoinDiffBytes),
        cfg.max_diff_part
    );
    check_cluster(&sim, &ids).unwrap();
}
