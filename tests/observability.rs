//! The tracing layer is zero-perturbation: turning it on must not change a
//! single scheduling decision. Traced and untraced runs of the same seed
//! must produce bit-identical delivery histories, client results, and
//! counters — tracing only *adds* the recorded timeline.

use acuerdo_repro::abcast::{MsgHdr, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
use acuerdo_repro::simnet::{chrome_trace_json, SimTime};
use bytes::Bytes;
use std::time::Duration;

struct Outcome {
    histories: Vec<Vec<(MsgHdr, Bytes)>>,
    completed: u64,
    payload_bytes: u64,
    samples: u64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
    counters_json: String,
    distinct_counters: usize,
    event_count: usize,
    timeline: Option<String>,
}

fn run(seed: u64, traced: bool, crash: bool) -> Outcome {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
    sim.set_tracing(traced);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    if crash {
        sim.crash_at(0, SimTime::from_millis(2));
    }
    sim.run_until(SimTime::from_millis(10));
    let r = sim.node::<WindowClient<AcWire>>(client).result();
    let snap = sim.metrics();
    Outcome {
        histories: acuerdo::histories(&sim, &ids),
        completed: r.completed,
        payload_bytes: r.payload_bytes,
        samples: r.latency.count(),
        mean_us: r.latency.mean_us(),
        p50_us: r.latency.p50_us(),
        p99_us: r.latency.p99_us(),
        counters_json: snap.to_json(),
        distinct_counters: snap.distinct_nonzero(),
        event_count: sim.trace_events().len(),
        timeline: traced.then(|| chrome_trace_json(sim.trace_events())),
    }
}

fn assert_identical(a: &Outcome, b: &Outcome) {
    assert_eq!(a.histories, b.histories, "delivery histories diverged");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.payload_bytes, b.payload_bytes);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.mean_us, b.mean_us, "latency mean diverged");
    assert_eq!(a.p50_us, b.p50_us);
    assert_eq!(a.p99_us, b.p99_us);
    assert_eq!(a.counters_json, b.counters_json, "counters diverged");
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let traced = run(42, true, false);
    let untraced = run(42, false, false);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0, "traced run recorded nothing");
    assert_eq!(untraced.event_count, 0, "untraced run recorded events");
}

#[test]
fn tracing_does_not_perturb_a_failover() {
    let traced = run(555, true, true);
    let untraced = run(555, false, true);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0);
}

#[test]
fn traced_run_yields_timeline_and_counters() {
    let o = run(7, true, false);
    assert!(
        o.distinct_counters >= 8,
        "only {} distinct counters nonzero",
        o.distinct_counters
    );
    let tl = o.timeline.expect("timeline present");
    let tl = tl.trim();
    assert!(
        tl.starts_with("{\"displayTimeUnit\"") && tl.ends_with("]}"),
        "not a trace-event document"
    );
    // Fabric spans and protocol instants both made it into the timeline.
    assert!(tl.contains("\"ph\":\"X\""), "no spans in timeline");
    assert!(tl.contains("commit"), "no commit instants in timeline");
    assert!(tl.contains("nic"), "no NIC lanes in timeline");
}

#[test]
fn tracing_does_not_perturb_a_chaos_schedule() {
    // Zero-perturbation must survive the full fault vocabulary: replay a
    // seeded chaos schedule (crash, restart, partition, pause, link delay,
    // CPU scaling) with tracing on and off and demand bit-identical outcomes.
    use acuerdo_repro::bench::chaos::Schedule;

    fn run_chaos_schedule(seed: u64, traced: bool) -> Outcome {
        let n = 5;
        let cfg = AcuerdoConfig {
            fail_timeout: Duration::from_micros(400),
            retain_log: true,
            ..AcuerdoConfig::stable(n)
        };
        let horizon = SimTime::from_millis(15);
        let (mut sim, ids, client) =
            acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
        acuerdo::enable_restarts(&mut sim, &cfg, &ids);
        sim.set_tracing(traced);
        {
            let c = sim.node_mut::<WindowClient<AcWire>>(client);
            c.retransmit = Some(Duration::from_millis(1));
            c.replicas = ids.clone();
        }
        let sched = Schedule::generate(seed, n, horizon, true);
        for tf in &sched.faults {
            if tf.at > sim.now() {
                sim.run_until(tf.at);
            }
            tf.apply(&mut sim, n);
        }
        sim.run_until(horizon);
        let r = sim.node::<WindowClient<AcWire>>(client).result();
        let snap = sim.metrics();
        Outcome {
            histories: acuerdo::histories(&sim, &ids),
            completed: r.completed,
            payload_bytes: r.payload_bytes,
            samples: r.latency.count(),
            mean_us: r.latency.mean_us(),
            p50_us: r.latency.p50_us(),
            p99_us: r.latency.p99_us(),
            counters_json: snap.to_json(),
            distinct_counters: snap.distinct_nonzero(),
            event_count: sim.trace_events().len(),
            timeline: traced.then(|| chrome_trace_json(sim.trace_events())),
        }
    }

    let traced = run_chaos_schedule(11, true);
    let untraced = run_chaos_schedule(11, false);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0, "chaos run recorded no events");
    assert_eq!(untraced.event_count, 0);
    // The fault machinery itself showed up in the counters.
    assert!(
        traced.distinct_counters >= 10,
        "only {} distinct counters nonzero under chaos",
        traced.distinct_counters
    );
}

#[test]
fn committed_messages_get_complete_monotone_lifecycles() {
    // Every message the client saw commit must leave a joined-up lifecycle on
    // the timeline: all nine stages present, in non-decreasing time order.
    // (≥99% allowed: messages still in flight at the horizon are partial.)
    use acuerdo_repro::abcast::spans;

    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, _ids, client) = acuerdo::cluster_with_client(21, &cfg, 8, 10, Duration::ZERO);
    sim.set_tracing(true);
    sim.run_until(SimTime::from_millis(10));
    let committed = sim.node::<WindowClient<AcWire>>(client).result().completed;
    assert!(committed > 100, "only {committed} commits in 10ms");

    let lifecycles = spans::collect(sim.trace_events());
    let complete = lifecycles
        .iter()
        .filter(|l| l.complete() && l.monotone())
        .count();
    assert!(
        complete as f64 >= 0.99 * committed as f64,
        "{complete} complete monotone lifecycles for {committed} committed messages"
    );
}

#[test]
fn auditor_is_silent_on_clean_runs() {
    // The online invariant auditor runs inside every instrumented protocol;
    // on a fault-free run none of its violation counters may fire.
    use acuerdo_repro::bench::{run_broadcast_metrics, RunSpec, System};
    use acuerdo_repro::simnet::Counter;

    for system in [
        System::Acuerdo,
        System::DerechoLeader,
        System::DerechoAll,
        System::Libpaxos,
        System::Zookeeper,
        System::Etcd,
    ] {
        let (_, m) = run_broadcast_metrics(system, 3, 10, 4, 13, RunSpec::quick(system));
        for c in [
            Counter::AuditEpochRegress,
            Counter::AuditCommitRegress,
            Counter::AuditCommitAheadAccept,
        ] {
            assert_eq!(
                m.total(c),
                0,
                "{system:?}: auditor fired {} on a clean run",
                c.name()
            );
        }
    }
}

#[test]
fn gauges_and_flight_recorder_do_not_perturb_the_run() {
    // The full observability stack — gauge sampler ticking every 100µs plus
    // the always-on flight recorder — must be as invisible to the schedule
    // as tracing is: a fully-observed run and a fully-dark run (no sampler,
    // flight recorder forced off) of the same seed are bit-identical.
    fn run_observed(seed: u64, observed: bool) -> (Outcome, usize, usize) {
        let cfg = AcuerdoConfig {
            fail_timeout: Duration::from_micros(400),
            ..AcuerdoConfig::stable(3)
        };
        let (mut sim, ids, client) =
            acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
        if observed {
            sim.set_gauge_sampling(Duration::from_micros(100));
        } else {
            sim.set_flight_recorder(false);
        }
        sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
        sim.run_until(SimTime::from_millis(10));
        let r = sim.node::<WindowClient<AcWire>>(client).result();
        let snap = sim.metrics();
        // Compare per-node *counters* exactly, but not the sidecar's gauge
        // levels: `nic_egress_depth` is written by the sampler itself, so its
        // final level is observability output, not schedule state.
        let outcome = Outcome {
            histories: acuerdo::histories(&sim, &ids),
            completed: r.completed,
            payload_bytes: r.payload_bytes,
            samples: r.latency.count(),
            mean_us: r.latency.mean_us(),
            p50_us: r.latency.p50_us(),
            p99_us: r.latency.p99_us(),
            counters_json: format!("{:?}", snap.nodes),
            distinct_counters: snap.distinct_nonzero(),
            event_count: sim.trace_events().len(),
            timeline: None,
        };
        let gauge_samples = sim.gauge_samples().len();
        let flight_events = sim.flight_events().len();
        (outcome, gauge_samples, flight_events)
    }

    let (on, samples_on, flight_on) = run_observed(42, true);
    let (off, samples_off, flight_off) = run_observed(42, false);
    assert_identical(&on, &off);
    assert!(samples_on > 0, "sampler produced no gauge samples");
    assert!(flight_on > 0, "flight recorder stayed empty");
    assert_eq!(samples_off, 0, "dark run produced gauge samples");
    assert_eq!(flight_off, 0, "disabled flight recorder recorded events");
}

#[test]
fn suite_documents_are_byte_identical_per_seed() {
    // The perf-regression observatory's contract: same pinned config, same
    // seed ⇒ the same BENCH_*.json document, byte for byte. That is what
    // lets bench-diff hold counters to exact equality.
    use acuerdo_repro::bench::json;
    use acuerdo_repro::bench::suite::{run_suite, SuiteConfig, SCHEMA};

    let mut cfg = SuiteConfig::new(true);
    cfg.windows = vec![1]; // one window keeps the debug-mode test quick
    let a = run_suite(&cfg);
    let b = run_suite(&cfg);
    assert_eq!(a, b, "suite document differs between identical runs");

    let doc = json::parse(&a).expect("suite document parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(SCHEMA),
        "schema tag missing"
    );
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_array())
        .expect("runs array");
    assert_eq!(runs.len(), 5, "one run per suite system");
    for run in runs {
        assert!(
            run.get("gauge_series").is_some(),
            "run record lacks a gauge_series summary"
        );
        assert!(run.get("metrics").is_some(), "run record lacks counters");
    }
}

#[test]
fn auditor_firing_produces_a_loadable_flight_recorder_dump() {
    // When the online auditor fires, the flight recorder's last-N ring is
    // dumped as flightrec-<seed>.json; the dump must round-trip through the
    // same loader trace-report uses.
    use acuerdo_repro::abcast::{check::Auditor, Epoch};
    use acuerdo_repro::bench::{audit_fired, report, write_flightrec};
    use acuerdo_repro::simnet::{Ctx, NetParams, NodeId, Process, Sim};

    // A deliberately misbehaving process: its second audit observation
    // reports a committed header *behind* the first — a commit regression.
    struct Regressor {
        audit: Auditor,
        step: u32,
    }
    impl Process<()> for Regressor {
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.set_timer(Duration::from_micros(10), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<()>, _token: u64) {
            let e = Epoch::new(1, 0);
            let committed = MsgHdr::new(e, if self.step == 0 { 5 } else { 3 });
            self.audit.observe(ctx, e, MsgHdr::new(e, 5), committed);
            self.step += 1;
            if self.step < 3 {
                ctx.set_timer(Duration::from_micros(10), 1);
            }
        }
    }

    let seed = 4242;
    let mut sim: Sim<()> = Sim::new(seed, NetParams::rdma());
    sim.add_node(Box::new(Regressor {
        audit: Auditor::new(),
        step: 0,
    }));
    sim.run_until(SimTime::from_millis(1));

    assert!(
        audit_fired(&sim.metrics()),
        "regressing commits did not fire the auditor"
    );
    let flight = sim.flight_events();
    assert!(!flight.is_empty(), "flight recorder captured nothing");

    let dir = std::env::temp_dir().join(format!("flightrec-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = write_flightrec(dir.to_str().unwrap(), seed, &flight).expect("dump flight recorder");
    assert!(path.ends_with(&format!("flightrec-{seed}.json")));

    let text = std::fs::read_to_string(&path).expect("read dump");
    assert!(
        text.contains("audit_commit_regress"),
        "dump does not mention the violation"
    );
    // Loadable by the same reader trace-report uses.
    report::load_trace_file(&path).expect("dump round-trips through the trace loader");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn forensics_is_zero_perturbation_and_deterministic() {
    // The tail-latency forensics collector is always on — traced and
    // untraced runs of one seed must produce byte-identical snapshots
    // (wait integrals, straggler tallies, and the full outlier ring), and
    // identical runs must reproduce them exactly.
    use acuerdo_repro::simnet::ForensicsSnapshot;

    fn forensics_of(seed: u64, traced: bool) -> ForensicsSnapshot {
        let cfg = AcuerdoConfig::stable(3);
        let (mut sim, _ids, _client) =
            acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
        sim.set_tracing(traced);
        sim.run_until(SimTime::from_millis(10));
        sim.metrics().forensics
    }

    let traced = forensics_of(42, true);
    let untraced = forensics_of(42, false);
    assert_eq!(traced, untraced, "forensics snapshot depends on tracing");
    assert_eq!(
        untraced,
        forensics_of(42, false),
        "snapshot not reproducible"
    );

    assert!(
        traced.commits > 100,
        "only {} commits finalized",
        traced.commits
    );
    assert!(!traced.outliers.is_empty(), "outlier ring stayed empty");
    assert!(
        traced.outliers.len() <= acuerdo_repro::simnet::OUTLIER_RING_DEPTH,
        "outlier ring overflowed its bound"
    );
    assert!(
        traced.straggler_quorums.iter().sum::<u64>() > 0,
        "no quorum named a straggler"
    );
    assert!(
        traced.waits.iter().any(|w| w.ns.iter().any(|&ns| ns > 0)),
        "no wait interval was attributed"
    );
}

#[test]
fn outlier_blame_sums_exactly_and_names_stragglers() {
    // Every captured outlier must decompose: its blame vector sums to the
    // measured commit latency exactly (the within-1% acceptance bound is
    // met with zero slack), the ring is sorted slowest-first, and each
    // outlier names the commit quorum's last-acking follower.
    use acuerdo_repro::abcast::blame;

    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, _ids, _client) = acuerdo::cluster_with_client(21, &cfg, 8, 10, Duration::ZERO);
    sim.run_until(SimTime::from_millis(10));
    let f = sim.metrics().forensics;
    assert!(!f.outliers.is_empty());
    let mut prev = u64::MAX;
    for rec in &f.outliers {
        assert!(
            rec.latency_ns <= prev,
            "outlier ring not sorted slowest-first"
        );
        prev = rec.latency_ns;
        let b = blame(rec).expect("finalized outlier must be blameable");
        assert_eq!(
            b.total_ns(),
            rec.latency_ns,
            "blame vector does not sum to the measured latency"
        );
        assert!(
            rec.straggler.is_some(),
            "outlier 0x{:016x} names no straggler",
            rec.id
        );
        assert!(b.dominant().is_some(), "no dominant cause");
    }
}

#[test]
fn crash_induced_outliers_blame_the_retransmit_rounds() {
    // A leader crash mid-run stalls in-flight requests until the client's
    // retransmit timer re-submits them to the new leader. Those commits are
    // the run's slowest by an order of magnitude, so the outlier ring must
    // capture them with their retransmit rounds, and the blame assembler
    // must charge the dead time to the retransmit cause.
    use acuerdo_repro::abcast::{blame, BlameCause};

    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(555, &cfg, 8, 10, Duration::ZERO);
    {
        let c = sim.node_mut::<WindowClient<AcWire>>(client);
        c.retransmit = Some(Duration::from_millis(1));
        c.replicas = ids.clone();
    }
    sim.crash_at(0, SimTime::from_millis(2));
    sim.run_until(SimTime::from_millis(10));

    let f = sim.metrics().forensics;
    let retried: Vec<_> = f
        .outliers
        .iter()
        .filter(|rec| rec.retransmits > 0)
        .collect();
    assert!(
        !retried.is_empty(),
        "no crash-stalled commit with retransmit rounds reached the outlier ring"
    );
    for rec in retried {
        let b = blame(rec).expect("retried outlier must be blameable");
        assert!(
            b.ns[BlameCause::Retransmit as usize] > 0,
            "outlier 0x{:016x} with {} retransmit rounds has zero retransmit blame",
            rec.id,
            rec.retransmits
        );
        assert_eq!(b.total_ns(), rec.latency_ns);
    }
}

#[test]
fn trace_report_agrees_with_the_metrics_sidecar() {
    // The offline pipeline (chrome export → re-parse → trace-report) must
    // account for exactly the stage marks the online counters saw, and the
    // gauge counter tracks must round-trip sample for sample.
    use acuerdo_repro::bench::{report, run_broadcast_traced, RunSpec, System};
    use acuerdo_repro::simnet::{chrome_trace_json_full, Counter};

    let spec = RunSpec::quick(System::Acuerdo);
    let (_, metrics, events, gauges) = run_broadcast_traced(System::Acuerdo, 3, 10, 8, 5, spec);
    assert!(!gauges.is_empty(), "traced run sampled no gauges");
    let (parsed, regauged) =
        report::parse_chrome_trace_full(&chrome_trace_json_full(&events, &gauges))
            .expect("parse own export");
    assert_eq!(
        regauged.len(),
        gauges.len(),
        "gauge samples lost in the chrome round-trip"
    );
    let r = report::build(&parsed);
    assert!(!r.is_empty(), "trace-report saw no stage marks");
    assert_eq!(
        r.total_marks(),
        metrics.total(Counter::SpanMarks),
        "trace-report mark total disagrees with the span_marks counter"
    );
    assert!(r.stages.totals_count() > 0, "empty stage anatomy");
    assert!(
        r.lifecycles.iter().any(|l| l.complete()),
        "no complete lifecycle in the report"
    );
    assert!(!r.talkers.is_empty(), "no NIC traffic in the report");
}
