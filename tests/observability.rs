//! The tracing layer is zero-perturbation: turning it on must not change a
//! single scheduling decision. Traced and untraced runs of the same seed
//! must produce bit-identical delivery histories, client results, and
//! counters — tracing only *adds* the recorded timeline.

use acuerdo_repro::abcast::{MsgHdr, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
use acuerdo_repro::simnet::{chrome_trace_json, SimTime};
use bytes::Bytes;
use std::time::Duration;

struct Outcome {
    histories: Vec<Vec<(MsgHdr, Bytes)>>,
    completed: u64,
    payload_bytes: u64,
    samples: u64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
    counters_json: String,
    distinct_counters: usize,
    event_count: usize,
    timeline: Option<String>,
}

fn run(seed: u64, traced: bool, crash: bool) -> Outcome {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
    sim.set_tracing(traced);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    if crash {
        sim.crash_at(0, SimTime::from_millis(2));
    }
    sim.run_until(SimTime::from_millis(10));
    let r = sim.node::<WindowClient<AcWire>>(client).result();
    let snap = sim.metrics();
    Outcome {
        histories: acuerdo::histories(&sim, &ids),
        completed: r.completed,
        payload_bytes: r.payload_bytes,
        samples: r.latency.count(),
        mean_us: r.latency.mean_us(),
        p50_us: r.latency.p50_us(),
        p99_us: r.latency.p99_us(),
        counters_json: snap.to_json(),
        distinct_counters: snap.distinct_nonzero(),
        event_count: sim.trace_events().len(),
        timeline: traced.then(|| chrome_trace_json(sim.trace_events())),
    }
}

fn assert_identical(a: &Outcome, b: &Outcome) {
    assert_eq!(a.histories, b.histories, "delivery histories diverged");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.payload_bytes, b.payload_bytes);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.mean_us, b.mean_us, "latency mean diverged");
    assert_eq!(a.p50_us, b.p50_us);
    assert_eq!(a.p99_us, b.p99_us);
    assert_eq!(a.counters_json, b.counters_json, "counters diverged");
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let traced = run(42, true, false);
    let untraced = run(42, false, false);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0, "traced run recorded nothing");
    assert_eq!(untraced.event_count, 0, "untraced run recorded events");
}

#[test]
fn tracing_does_not_perturb_a_failover() {
    let traced = run(555, true, true);
    let untraced = run(555, false, true);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0);
}

#[test]
fn traced_run_yields_timeline_and_counters() {
    let o = run(7, true, false);
    assert!(
        o.distinct_counters >= 8,
        "only {} distinct counters nonzero",
        o.distinct_counters
    );
    let tl = o.timeline.expect("timeline present");
    let tl = tl.trim();
    assert!(
        tl.starts_with("{\"displayTimeUnit\"") && tl.ends_with("]}"),
        "not a trace-event document"
    );
    // Fabric spans and protocol instants both made it into the timeline.
    assert!(tl.contains("\"ph\":\"X\""), "no spans in timeline");
    assert!(tl.contains("commit"), "no commit instants in timeline");
    assert!(tl.contains("nic"), "no NIC lanes in timeline");
}

#[test]
fn tracing_does_not_perturb_a_chaos_schedule() {
    // Zero-perturbation must survive the full fault vocabulary: replay a
    // seeded chaos schedule (crash, restart, partition, pause, link delay,
    // CPU scaling) with tracing on and off and demand bit-identical outcomes.
    use acuerdo_repro::bench::chaos::Schedule;

    fn run_chaos_schedule(seed: u64, traced: bool) -> Outcome {
        let n = 5;
        let cfg = AcuerdoConfig {
            fail_timeout: Duration::from_micros(400),
            retain_log: true,
            ..AcuerdoConfig::stable(n)
        };
        let horizon = SimTime::from_millis(15);
        let (mut sim, ids, client) =
            acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
        acuerdo::enable_restarts(&mut sim, &cfg, &ids);
        sim.set_tracing(traced);
        {
            let c = sim.node_mut::<WindowClient<AcWire>>(client);
            c.retransmit = Some(Duration::from_millis(1));
            c.replicas = ids.clone();
        }
        let sched = Schedule::generate(seed, n, horizon, true);
        for tf in &sched.faults {
            if tf.at > sim.now() {
                sim.run_until(tf.at);
            }
            tf.apply(&mut sim, n);
        }
        sim.run_until(horizon);
        let r = sim.node::<WindowClient<AcWire>>(client).result();
        let snap = sim.metrics();
        Outcome {
            histories: acuerdo::histories(&sim, &ids),
            completed: r.completed,
            payload_bytes: r.payload_bytes,
            samples: r.latency.count(),
            mean_us: r.latency.mean_us(),
            p50_us: r.latency.p50_us(),
            p99_us: r.latency.p99_us(),
            counters_json: snap.to_json(),
            distinct_counters: snap.distinct_nonzero(),
            event_count: sim.trace_events().len(),
            timeline: traced.then(|| chrome_trace_json(sim.trace_events())),
        }
    }

    let traced = run_chaos_schedule(11, true);
    let untraced = run_chaos_schedule(11, false);
    assert_identical(&traced, &untraced);
    assert!(traced.event_count > 0, "chaos run recorded no events");
    assert_eq!(untraced.event_count, 0);
    // The fault machinery itself showed up in the counters.
    assert!(
        traced.distinct_counters >= 10,
        "only {} distinct counters nonzero under chaos",
        traced.distinct_counters
    );
}

#[test]
fn committed_messages_get_complete_monotone_lifecycles() {
    // Every message the client saw commit must leave a joined-up lifecycle on
    // the timeline: all nine stages present, in non-decreasing time order.
    // (≥99% allowed: messages still in flight at the horizon are partial.)
    use acuerdo_repro::abcast::spans;

    let cfg = AcuerdoConfig::stable(3);
    let (mut sim, _ids, client) = acuerdo::cluster_with_client(21, &cfg, 8, 10, Duration::ZERO);
    sim.set_tracing(true);
    sim.run_until(SimTime::from_millis(10));
    let committed = sim.node::<WindowClient<AcWire>>(client).result().completed;
    assert!(committed > 100, "only {committed} commits in 10ms");

    let lifecycles = spans::collect(sim.trace_events());
    let complete = lifecycles
        .iter()
        .filter(|l| l.complete() && l.monotone())
        .count();
    assert!(
        complete as f64 >= 0.99 * committed as f64,
        "{complete} complete monotone lifecycles for {committed} committed messages"
    );
}

#[test]
fn auditor_is_silent_on_clean_runs() {
    // The online invariant auditor runs inside every instrumented protocol;
    // on a fault-free run none of its violation counters may fire.
    use acuerdo_repro::bench::{run_broadcast_metrics, RunSpec, System};
    use acuerdo_repro::simnet::Counter;

    for system in [
        System::Acuerdo,
        System::DerechoLeader,
        System::DerechoAll,
        System::Libpaxos,
        System::Zookeeper,
        System::Etcd,
    ] {
        let (_, m) = run_broadcast_metrics(system, 3, 10, 4, 13, RunSpec::quick(system));
        for c in [
            Counter::AuditEpochRegress,
            Counter::AuditCommitRegress,
            Counter::AuditCommitAheadAccept,
        ] {
            assert_eq!(
                m.total(c),
                0,
                "{system:?}: auditor fired {} on a clean run",
                c.name()
            );
        }
    }
}

#[test]
fn trace_report_agrees_with_the_metrics_sidecar() {
    // The offline pipeline (chrome export → re-parse → trace-report) must
    // account for exactly the stage marks the online counters saw.
    use acuerdo_repro::bench::{report, run_broadcast_traced, RunSpec, System};
    use acuerdo_repro::simnet::Counter;

    let spec = RunSpec::quick(System::Acuerdo);
    let (_, metrics, events) = run_broadcast_traced(System::Acuerdo, 3, 10, 8, 5, spec);
    let parsed = report::parse_chrome_trace(&chrome_trace_json(&events)).expect("parse own export");
    let r = report::build(&parsed);
    assert!(!r.is_empty(), "trace-report saw no stage marks");
    assert_eq!(
        r.total_marks(),
        metrics.total(Counter::SpanMarks),
        "trace-report mark total disagrees with the span_marks counter"
    );
    assert!(r.stages.totals_count() > 0, "empty stage anatomy");
    assert!(
        r.lifecycles.iter().any(|l| l.complete()),
        "no complete lifecycle in the report"
    );
    assert!(!r.talkers.is_empty(), "no NIC traffic in the report");
}
