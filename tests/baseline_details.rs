//! Additional edge-case coverage for the TCP baselines: Zab's cumulative
//! commit watermark, libpaxos under asymmetric link delays at scale, and
//! etcd/Raft log convergence after a partitioned-ish leader change.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

#[test]
fn zab_cumulative_commit_survives_delayed_acks() {
    use acuerdo_repro::zab::{self, ZabConfig, ZabNode, ZkWire};
    // Slow the leader→follower-2 proposal path: follower 1 alone forms the
    // quorum, commits advance cumulatively, and follower 2 must still
    // deliver the full prefix (from buffered proposals + the watermark).
    let cfg = ZabConfig::default();
    let (mut sim, ids, client) =
        zab::cluster_with_client(301, &cfg, 8, 10, Duration::from_millis(5));
    sim.add_link_latency(0, 2, Duration::from_millis(2), SimTime::from_millis(30));
    sim.run_until(SimTime::from_millis(80));
    zab::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<ZkWire>>(client).result();
    assert!(r.completed > 100, "quorum stalled: {}", r.completed);
    // The delayed follower converges once the transient passes.
    let d2 = sim.node::<ZabNode>(2).delivered_count;
    let d1 = sim.node::<ZabNode>(1).delivered_count;
    assert!(
        d2 * 10 >= d1 * 9,
        "delayed follower too far behind: {d2} vs {d1}"
    );
}

#[test]
fn zab_five_nodes_totally_order_under_load() {
    use acuerdo_repro::zab::{self, ZabConfig, ZkWire};
    let cfg = ZabConfig {
        n: 5,
        ..ZabConfig::default()
    };
    let (mut sim, ids, client) =
        zab::cluster_with_client(302, &cfg, 16, 100, Duration::from_millis(5));
    sim.run_until(SimTime::from_millis(80));
    zab::check_cluster(&sim, &ids).unwrap();
    assert!(sim.node::<WindowClient<ZkWire>>(client).result().completed > 100);
}

#[test]
fn libpaxos_scales_down_gracefully_to_single_node() {
    use acuerdo_repro::paxos::{self, PaxosConfig, PaxosNode, PxWire};
    // n = 1: the degenerate quorum of one must self-choose instantly.
    let cfg = PaxosConfig {
        n: 1,
        ..PaxosConfig::default()
    };
    let (mut sim, ids, client) =
        paxos::cluster_with_client(303, &cfg, 4, 10, Duration::from_millis(2));
    sim.run_until(SimTime::from_millis(30));
    paxos::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<PxWire>>(client).result();
    assert!(r.completed > 50, "single-node paxos stalled");
    assert!(sim.node::<PaxosNode>(0).delivered_count > 50);
}

#[test]
fn libpaxos_seven_acceptors_tolerate_three_slow() {
    use acuerdo_repro::paxos::{self, PaxosConfig, PxWire};
    let cfg = PaxosConfig {
        n: 7,
        ..PaxosConfig::default()
    };
    let (mut sim, ids, client) =
        paxos::cluster_with_client(304, &cfg, 8, 10, Duration::from_millis(5));
    for slow in [4usize, 5, 6] {
        sim.pause_at(slow, SimTime::ZERO, Duration::from_secs(10));
    }
    sim.run_until(SimTime::from_millis(80));
    paxos::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<PxWire>>(client).result();
    assert!(r.completed > 100, "4-of-7 quorum must commit");
}

#[test]
fn raft_log_conflict_is_truncated_after_leadership_change() {
    use acuerdo_repro::raft::{self, RaftConfig, RaftNode, RfWire};
    // Make follower 2 lag (descheduled) while the leader replicates, then
    // crash the leader: the new leader's AppendEntries consistency check
    // must walk follower 2 back and re-converge the logs.
    let cfg = RaftConfig::default();
    let (mut sim, ids, client) = raft::cluster_with_client(305, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<RfWire>>(client).retransmit = Some(Duration::from_millis(100));
    sim.pause_at(2, SimTime::from_millis(5), Duration::from_millis(60));
    sim.run_until(SimTime::from_millis(40));
    sim.crash(0);
    sim.run_until(SimTime::from_millis(900));
    let new_leader = ids
        .iter()
        .find(|&&id| {
            !sim.is_crashed(id)
                && sim.node::<RaftNode>(id).role() == acuerdo_repro::raft::RaftRole::Leader
        })
        .copied()
        .expect("new leader");
    sim.node_mut::<WindowClient<RfWire>>(client).targets = vec![new_leader];
    sim.run_until(SimTime::from_millis(2_000));
    raft::check_cluster(&sim, &ids).unwrap();
    // The lagged follower converged to the new leader's log.
    let dl = sim.node::<RaftNode>(new_leader).delivered_count;
    let d2 = sim.node::<RaftNode>(2).delivered_count;
    assert!(d2 > 0, "lagged follower never recovered");
    assert!(dl > 0);
}

#[test]
fn apus_recovers_after_transient_total_stall() {
    use acuerdo_repro::apus::{self, ApWire, ApusConfig};
    // All followers briefly unreachable (extra latency): the single pending
    // batch stalls, then the pipeline refills without loss or reorder.
    let cfg = ApusConfig::default();
    let (mut sim, ids, client) =
        apus::cluster_with_client(306, &cfg, 32, 10, Duration::from_millis(1));
    sim.add_link_latency(0, 1, Duration::from_millis(1), SimTime::from_millis(6));
    sim.add_link_latency(0, 2, Duration::from_millis(1), SimTime::from_millis(6));
    sim.run_until(SimTime::from_millis(20));
    apus::check_cluster(&sim, &ids).unwrap();
    let r = sim.node::<WindowClient<ApWire>>(client).result();
    assert!(
        r.completed > 500,
        "no recovery after stall: {}",
        r.completed
    );
}
