//! The what-if engine's safety proof: applying the **null** intervention —
//! or a set of explicit unit (×1.0) factors covering every intervention
//! kind — reproduces the uninstrumented run byte-identically, for every
//! system of the quick matrix. Interventions are parameters-only by design
//! (`simnet::Intervention`): they never touch the RNG draw sequence or the
//! event vocabulary, so a factor of exactly 1.0 must be invisible down to
//! the last counter and forensic nanosecond. A real factor, by contrast,
//! must move the measured point.

use acuerdo_repro::bench::whatif::WHATIF_SYSTEMS;
use acuerdo_repro::bench::{run_broadcast_observed, run_record_json, Observe, RunSpec, System};
use acuerdo_repro::simnet::{Intervention, InterventionSet, SpanStage};

/// One run rendered as the full sidecar record: point, counters, util, and
/// forensics — integer-exact members included, so string equality is byte
/// identity over everything the observatory exports.
fn record(system: System, set: InterventionSet) -> String {
    let (n, payload, window, seed) = (3, 64, 8, 42);
    let spec = RunSpec::quick(system);
    let (p, m, _, _) = run_broadcast_observed(
        system,
        n,
        payload,
        window,
        seed,
        spec,
        Observe {
            interventions: set,
            ..Observe::default()
        },
    );
    run_record_json(
        "whatif-proof",
        system.name(),
        n,
        payload,
        seed,
        spec,
        &p,
        &m,
        None,
    )
}

/// Every intervention kind, all at identity factors, on every replica.
fn unit_set(n: usize) -> InterventionSet {
    let mut set = InterventionSet::null().with(Intervention::LinkLatencyScale { factor: 1.0 });
    for node in 0..n {
        set.push(Intervention::EgressTimeScale { node, factor: 1.0 });
        set.push(Intervention::IngressTimeScale { node, factor: 1.0 });
        set.push(Intervention::CpuScale { node, factor: 1.0 });
        set.push(Intervention::FsyncScale { node, factor: 1.0 });
        for stage in SpanStage::ALL {
            set.push(Intervention::StageCpuScale {
                node,
                stage,
                factor: 1.0,
            });
        }
    }
    set
}

#[test]
fn null_and_unit_interventions_are_byte_identical_across_the_matrix() {
    for system in WHATIF_SYSTEMS {
        let null = record(system, InterventionSet::null());
        let unit = record(system, unit_set(3));
        assert!(
            null == unit,
            "{}: unit-factor interventions perturbed the run",
            system.name()
        );
    }
}

#[test]
fn a_real_intervention_moves_the_measured_point() {
    let base = record(System::Acuerdo, InterventionSet::null());
    let halved = record(
        System::Acuerdo,
        InterventionSet::null().with(Intervention::LinkLatencyScale { factor: 0.5 }),
    );
    assert!(
        base != halved,
        "halving every link latency left the record unchanged"
    );
}

#[test]
fn link_latency_halving_cuts_mean_latency() {
    let run = |set: InterventionSet| {
        let spec = RunSpec::quick(System::Acuerdo);
        run_broadcast_observed(
            System::Acuerdo,
            3,
            64,
            8,
            42,
            spec,
            Observe {
                interventions: set,
                ..Observe::default()
            },
        )
        .0
    };
    let base = run(InterventionSet::null());
    let halved = run(InterventionSet::null().with(Intervention::LinkLatencyScale { factor: 0.5 }));
    // The mean is exact (LatencyHist's quantiles are 5%-bucketed, and a
    // propagation-delay cut at this tiny payload can be sub-bucket).
    assert!(
        halved.mean_us < base.mean_us,
        "mean {} should drop below baseline {}",
        halved.mean_us,
        base.mean_us
    );
}
