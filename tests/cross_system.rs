//! Cross-system integration: every protocol in the evaluation commits,
//! totally orders, and sits where the paper's Figure 8 puts it relative to
//! the others.

use acuerdo_repro::abcast::WindowClient;
use acuerdo_repro::simnet::SimTime;
use std::time::Duration;

struct Measured {
    name: &'static str,
    mean_us: f64,
    msgs_per_sec: f64,
}

fn measure_all(seed: u64, window: usize) -> Vec<Measured> {
    let mut out = Vec::new();
    let rdma_warm = Duration::from_millis(1);
    let rdma_end = SimTime::from_millis(8);
    let tcp_warm = Duration::from_millis(10);
    let tcp_end = SimTime::from_millis(80);

    {
        use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
        let (mut sim, ids, c) =
            acuerdo::cluster_with_client(seed, &AcuerdoConfig::stable(3), window, 10, rdma_warm);
        sim.run_until(rdma_end);
        acuerdo::check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<AcWire>>(c).result();
        out.push(Measured {
            name: "acuerdo",
            mean_us: r.latency.mean_us(),
            msgs_per_sec: r.msgs_per_sec(),
        });
    }
    {
        use acuerdo_repro::derecho::{self, DcWire, DerechoConfig, Mode};
        for (name, mode) in [
            ("derecho-leader", Mode::Leader),
            ("derecho-all", Mode::AllSender),
        ] {
            let cfg = DerechoConfig {
                n: 3,
                mode,
                ..DerechoConfig::default()
            };
            let (mut sim, ids, c) = derecho::cluster_with_client(seed, &cfg, window, 10, rdma_warm);
            sim.run_until(rdma_end);
            derecho::check_cluster(&sim, &ids).unwrap();
            let r = sim.node::<WindowClient<DcWire>>(c).result();
            out.push(Measured {
                name,
                mean_us: r.latency.mean_us(),
                msgs_per_sec: r.msgs_per_sec(),
            });
        }
    }
    {
        use acuerdo_repro::apus::{self, ApWire, ApusConfig};
        let (mut sim, ids, c) =
            apus::cluster_with_client(seed, &ApusConfig::default(), window, 10, rdma_warm);
        sim.run_until(rdma_end);
        apus::check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<ApWire>>(c).result();
        out.push(Measured {
            name: "apus",
            mean_us: r.latency.mean_us(),
            msgs_per_sec: r.msgs_per_sec(),
        });
    }
    {
        use acuerdo_repro::paxos::{self, PaxosConfig, PxWire};
        let (mut sim, ids, c) =
            paxos::cluster_with_client(seed, &PaxosConfig::default(), window, 10, tcp_warm);
        sim.run_until(tcp_end);
        paxos::check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<PxWire>>(c).result();
        out.push(Measured {
            name: "libpaxos",
            mean_us: r.latency.mean_us(),
            msgs_per_sec: r.msgs_per_sec(),
        });
    }
    {
        use acuerdo_repro::zab::{self, ZabConfig, ZkWire};
        let (mut sim, ids, c) =
            zab::cluster_with_client(seed, &ZabConfig::default(), window, 10, tcp_warm);
        sim.run_until(tcp_end);
        zab::check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<ZkWire>>(c).result();
        out.push(Measured {
            name: "zookeeper",
            mean_us: r.latency.mean_us(),
            msgs_per_sec: r.msgs_per_sec(),
        });
    }
    {
        use acuerdo_repro::raft::{self, RaftConfig, RfWire};
        let (mut sim, ids, c) =
            raft::cluster_with_client(seed, &RaftConfig::default(), window, 10, tcp_warm);
        sim.run_until(SimTime::from_millis(200));
        raft::check_cluster(&sim, &ids).unwrap();
        let r = sim.node::<WindowClient<RfWire>>(c).result();
        out.push(Measured {
            name: "etcd",
            mean_us: r.latency.mean_us(),
            msgs_per_sec: r.msgs_per_sec(),
        });
    }
    out
}

fn get<'a>(ms: &'a [Measured], name: &str) -> &'a Measured {
    ms.iter().find(|m| m.name == name).unwrap()
}

#[test]
fn all_seven_systems_commit_under_identical_load() {
    let ms = measure_all(42, 4);
    for m in &ms {
        assert!(
            m.msgs_per_sec > 500.0,
            "{} barely committed: {} msg/s",
            m.name,
            m.msgs_per_sec
        );
    }
}

#[test]
fn figure8_latency_ordering_holds_at_low_load() {
    // The paper's headline: Acuerdo improves latency ~2x over the next-best
    // RDMA system and ~10x over the TCP systems.
    let ms = measure_all(42, 1);
    let acuerdo = get(&ms, "acuerdo").mean_us;
    let derecho = get(&ms, "derecho-leader").mean_us;
    let apus = get(&ms, "apus").mean_us;
    let zk = get(&ms, "zookeeper").mean_us;
    let etcd = get(&ms, "etcd").mean_us;
    let libpaxos = get(&ms, "libpaxos").mean_us;

    assert!(acuerdo < 16.0, "acuerdo latency {acuerdo}");
    assert!(
        derecho > acuerdo * 1.5 && derecho < acuerdo * 3.0,
        "derecho-leader {derecho} vs acuerdo {acuerdo} (paper: ~2x)"
    );
    assert!(apus > acuerdo, "apus {apus} vs acuerdo {acuerdo}");
    assert!(
        libpaxos > acuerdo * 8.0,
        "libpaxos {libpaxos} vs acuerdo {acuerdo} (paper: >=10x)"
    );
    assert!(zk > libpaxos, "zookeeper {zk} vs libpaxos {libpaxos}");
    assert!(etcd > zk, "etcd {etcd} vs zookeeper {zk}");
}

#[test]
fn figure8_throughput_ordering_holds_at_saturation() {
    let ms = measure_all(43, 1024);
    let acuerdo = get(&ms, "acuerdo").msgs_per_sec;
    let derecho = get(&ms, "derecho-leader").msgs_per_sec;
    let tcp_best = get(&ms, "libpaxos")
        .msgs_per_sec
        .max(get(&ms, "zookeeper").msgs_per_sec)
        .max(get(&ms, "etcd").msgs_per_sec);

    // The 2x bandwidth-efficiency claim (1 write vs 2 per small message).
    assert!(
        acuerdo > derecho * 1.5,
        "acuerdo {acuerdo} vs derecho-leader {derecho} (paper: ~2x)"
    );
    // RDMA systems clear the kernel-TCP systems by a wide margin.
    assert!(
        acuerdo > tcp_best * 3.0,
        "acuerdo {acuerdo} vs best TCP {tcp_best}"
    );
}

#[test]
fn derecho_all_trades_latency_for_bandwidth() {
    let low = measure_all(44, 1);
    let high = measure_all(44, 256);
    assert!(
        get(&low, "derecho-all").mean_us > get(&low, "derecho-leader").mean_us,
        "all-sender should have worse small-message latency"
    );
    assert!(
        get(&high, "derecho-all").msgs_per_sec > get(&high, "derecho-leader").msgs_per_sec * 1.5,
        "all-sender should have better aggregate bandwidth"
    );
}
