//! Durable-log robustness at the whole-repo level: recovery equivalence
//! (a replica rebuilt from its persistent log converges to the same
//! delivered prefix as a fresh-state rejoiner) and the negative control for
//! the durability auditor (a deliberately corrupted log tail MUST be
//! reported as a committed-entry loss — if this test fails, the auditor is
//! blind and every green chaos run is meaningless).

use acuerdo_repro::abcast::{DurabilityAuditor, Violation, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig, DisseminationMode};
use acuerdo_repro::simnet::{Counter, DurabilityMode, SimTime};
use bytes::Bytes;
use std::time::Duration;

/// One acuerdo run with a crash/restart of replica 2: returns every live
/// replica's delivered payload sequence plus replica 2's delivered length.
fn crash_restart_run(mode: DurabilityMode) -> (Vec<Vec<Bytes>>, usize, u64) {
    crash_restart_run_with(mode, DisseminationMode::Star, 8)
}

fn crash_restart_run_with(
    mode: DurabilityMode,
    dissemination: DisseminationMode,
    window: usize,
) -> (Vec<Vec<Bytes>>, usize, u64) {
    let cfg = AcuerdoConfig {
        retain_log: true,
        durability: mode,
        dissemination,
        ..AcuerdoConfig::stable(5)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(7, &cfg, window, 32, Duration::ZERO);
    acuerdo::enable_restarts(&mut sim, &cfg, &ids);
    // Inert retransmit: the leader never crashes in this schedule, so the
    // client's ingest order (and with it the payload sequence) is identical
    // across durability modes even though fsync charges shift the clock.
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(100));
    sim.crash_at(2, SimTime::from_millis(10));
    sim.restart_at(2, SimTime::from_millis(15));
    sim.run_until(SimTime::from_millis(50));
    acuerdo::check_cluster(&sim, &ids).expect("abcast safety");
    let hs = acuerdo::histories(&sim, &ids);
    assert_eq!(hs.len(), 5, "everyone is live at the horizon");
    let recovered_len = hs[2].len();
    // Within-run: the restarted replica's history is a prefix of the longest.
    let longest = hs.iter().max_by_key(|h| h.len()).expect("nonempty").clone();
    assert_eq!(
        &longest[..recovered_len],
        &hs[2][..],
        "restarted replica diverged from the cluster prefix"
    );
    let wal_records = sim.counter(2, Counter::WalRecoveredRecords);
    let payloads = hs
        .into_iter()
        .map(|h| h.into_iter().map(|(_, p)| p).collect())
        .collect();
    (payloads, recovered_len, wal_records)
}

/// Satellite: a replica recovered from its durable log must converge to
/// byte-identical delivered state vs a fresh-state rejoiner (volatile mode,
/// re-seeded by the leader's retained log) on the same seed. Headers may
/// differ across modes — fsync charges shift election timing — but the
/// delivered payload sequence is the state machine's input and must match.
#[test]
fn acuerdo_recovery_equivalence_durable_vs_fresh_rejoin() {
    let (durable, durable_len, durable_wal) = crash_restart_run(DurabilityMode::Durable);
    let (fresh, fresh_len, fresh_wal) = crash_restart_run(DurabilityMode::Volatile);
    assert!(durable_wal > 0, "durable restart must replay its WAL");
    assert_eq!(fresh_wal, 0, "volatile restart must not touch a WAL");
    assert!(
        durable_len > 100 && fresh_len > 100,
        "recovered replica re-delivered too little (durable {durable_len}, fresh {fresh_len})"
    );
    let k = durable[2].len().min(fresh[2].len());
    assert!(k > 100, "common prefix too short to be meaningful ({k})");
    assert_eq!(
        &durable[2][..k],
        &fresh[2][..k],
        "durable recovery and fresh rejoin delivered different payload sequences"
    );
}

/// Ring-mode recovery equivalence: the crashed replica sits mid-chain, so
/// its rejoin happens while frames reach it hop-by-hop (and, transiently,
/// via the leader's star fallback bridging the dead segment). The WAL-replay
/// path and the fresh-state rejoin path must still converge to a
/// byte-identical delivered payload prefix — recovery must not observe
/// *which* lane re-fed the replica.
///
/// Window 1 pins the client's submission order exactly: with multiple slots
/// in flight the client refills completed slots a delivery batch at a time,
/// and the chain's bursty commit cadence makes batch composition — hence
/// the submitted id sequence — sensitive to the fsync charges that differ
/// across durability modes. One outstanding request removes that freedom,
/// so any prefix mismatch here is a real recovery divergence.
#[test]
fn acuerdo_ring_recovery_equivalence_durable_vs_fresh_rejoin() {
    let (durable, durable_len, durable_wal) =
        crash_restart_run_with(DurabilityMode::Durable, DisseminationMode::Ring, 1);
    let (fresh, fresh_len, fresh_wal) =
        crash_restart_run_with(DurabilityMode::Volatile, DisseminationMode::Ring, 1);
    assert!(durable_wal > 0, "durable restart must replay its WAL");
    assert_eq!(fresh_wal, 0, "volatile restart must not touch a WAL");
    assert!(
        durable_len > 100 && fresh_len > 100,
        "recovered replica re-delivered too little (durable {durable_len}, fresh {fresh_len})"
    );
    let k = durable[2].len().min(fresh[2].len());
    assert!(k > 100, "common prefix too short to be meaningful ({k})");
    assert_eq!(
        &durable[2][..k],
        &fresh[2][..k],
        "ring-mode durable recovery and fresh rejoin delivered different payload sequences"
    );
}

/// Negative control: wipe half of every replica's persisted records behind
/// the cluster's back during a whole-cluster power failure. The recovered
/// cluster restarts from shorter logs, so the committed prefix the auditor
/// ratcheted before the failure can no longer be covered — `observe` at the
/// horizon MUST report the loss.
#[test]
fn corrupted_log_tail_is_reported_as_committed_entry_loss() {
    let cfg = AcuerdoConfig {
        retain_log: true,
        durability: DurabilityMode::Durable,
        ..AcuerdoConfig::stable(5)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(11, &cfg, 8, 32, Duration::ZERO);
    acuerdo::enable_restarts(&mut sim, &cfg, &ids);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(1));
    sim.run_until(SimTime::from_millis(15));

    let mut auditor = DurabilityAuditor::new();
    let pre = acuerdo::histories(&sim, &ids);
    let committed = pre.iter().map(Vec::len).max().unwrap_or(0);
    assert!(
        committed > 200,
        "need a substantial committed prefix ({committed})"
    );
    auditor.observe(&pre).expect("clean before the fault");

    sim.power_failure(&ids);
    for &id in &ids {
        let disk = sim.disk_mut(id);
        let keep = disk.synced_records().len() / 2;
        let drop = disk.synced_records().len() - keep;
        assert!(drop > 0, "tampering must remove something");
        disk.corrupt_drop_tail(drop);
    }
    let t = sim.now() + Duration::from_millis(2);
    for &id in &ids {
        sim.restart_at(id, t);
    }
    sim.run_until(SimTime::from_millis(50));

    let verdict = auditor.observe(&acuerdo::histories(&sim, &ids));
    match verdict {
        Err(Violation::CommittedEntryLost { committed_len, .. }) => {
            assert_eq!(
                committed_len, committed,
                "auditor tracked the ratcheted prefix"
            );
        }
        other => panic!("tampered logs must be caught, got {other:?}"),
    }
}
