//! Determinism: identical seeds reproduce identical executions bit-for-bit
//! (delivery histories, stats, epochs), across every system. This is what
//! makes the reproduced figures stable.

use acuerdo_repro::abcast::{MsgHdr, WindowClient};
use acuerdo_repro::acuerdo::{self, AcWire, AcuerdoConfig};
use acuerdo_repro::simnet::SimTime;
use bytes::Bytes;
use std::time::Duration;

fn acuerdo_history(seed: u64, crash: bool) -> (Vec<Vec<(MsgHdr, Bytes)>>, u64) {
    let cfg = AcuerdoConfig {
        fail_timeout: Duration::from_micros(400),
        ..AcuerdoConfig::stable(3)
    };
    let (mut sim, ids, client) = acuerdo::cluster_with_client(seed, &cfg, 8, 10, Duration::ZERO);
    sim.node_mut::<WindowClient<AcWire>>(client).retransmit = Some(Duration::from_millis(2));
    if crash {
        sim.crash_at(0, SimTime::from_millis(2));
    }
    sim.run_until(SimTime::from_millis(10));
    let completed = sim.node::<WindowClient<AcWire>>(client).total_completed;
    (acuerdo::histories(&sim, &ids), completed)
}

#[test]
fn same_seed_same_execution() {
    let (h1, c1) = acuerdo_history(1234, false);
    let (h2, c2) = acuerdo_history(1234, false);
    assert_eq!(c1, c2);
    assert_eq!(h1, h2);
}

#[test]
fn same_seed_same_execution_with_failover() {
    let (h1, c1) = acuerdo_history(555, true);
    let (h2, c2) = acuerdo_history(555, true);
    assert_eq!(c1, c2);
    assert_eq!(h1, h2);
}

#[test]
fn different_seeds_diverge() {
    // Jitter differs across seeds, so timing-sensitive counts should differ
    // (not a safety property — just evidence the seed is actually used).
    let (_, c1) = acuerdo_history(1, false);
    let (_, c2) = acuerdo_history(2, false);
    let (_, c3) = acuerdo_history(3, false);
    assert!(
        c1 != c2 || c2 != c3,
        "three seeds produced identical completions: {c1}"
    );
}

#[test]
fn tcp_systems_are_deterministic_too() {
    use acuerdo_repro::raft::{self, RaftConfig, RfWire};
    let run = |seed| {
        let cfg = RaftConfig::default();
        let (mut sim, ids, client) =
            raft::cluster_with_client(seed, &cfg, 4, 10, Duration::from_millis(5));
        sim.run_until(SimTime::from_millis(80));
        let c = sim.node::<WindowClient<RfWire>>(client).total_completed;
        let d: Vec<u64> = ids
            .iter()
            .map(|&id| sim.node::<raft::RaftNode>(id).delivered_count)
            .collect();
        (c, d)
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn chaos_schedules_and_runs_replay_bit_identically() {
    // The chaos harness is part of the reproducibility story: a failing seed
    // printed as a repro command must replay the exact same execution —
    // schedule, fault timing, delivery histories, and every counter.
    use acuerdo_repro::bench::chaos::{run_chaos, Proto, Schedule, CHAOS_N};
    let horizon = SimTime::from_millis(20);
    let s1 = Schedule::generate(42, CHAOS_N, horizon, true);
    let s2 = Schedule::generate(42, CHAOS_N, horizon, true);
    assert_eq!(s1, s2, "schedule generation is not deterministic");
    assert!(!s1.faults.is_empty());

    let r1 = run_chaos(Proto::Acuerdo, 42, horizon);
    let r2 = run_chaos(Proto::Acuerdo, 42, horizon);
    assert_eq!(
        r1.to_json(),
        r2.to_json(),
        "chaos run diverged between replays of the same seed"
    );
    assert!(r1.safety.is_none());
}

#[test]
fn calendar_and_heap_schedulers_replay_the_suite_bit_identically() {
    // The calendar queue is a pure scheduling-speed change: both event
    // queues drain the same (at, seq) total order, so swapping one for the
    // other can never move a message, a timer, or a counter. The strongest
    // statement of that is byte equality of the whole benchmark document —
    // every system, every window, every counter, every gauge sample.
    use acuerdo_repro::bench::suite::{run_suite, SuiteConfig};
    use acuerdo_repro::simnet::SchedKind;
    let doc = |k: SchedKind| {
        let mut cfg = SuiteConfig::new(true);
        cfg.scheduler = k;
        run_suite(&cfg)
    };
    let calendar = doc(SchedKind::Calendar);
    let heap = doc(SchedKind::Heap);
    assert!(
        calendar == heap,
        "schedulers diverged: the calendar queue broke the (at, seq) total order"
    );
}

#[test]
fn calendar_and_heap_schedulers_export_identical_traces() {
    // Byte equality of the exported Chrome trace is a stricter lens than the
    // benchmark document: it pins the exact event timeline (every delivery,
    // span, and gauge sample with its timestamp), not just the aggregates.
    use acuerdo_repro::bench::{run_broadcast_observed, Observe, RunSpec, System, SAMPLE_EVERY};
    use acuerdo_repro::simnet::{chrome_trace_json_full, SchedKind};
    let trace = |k: SchedKind| {
        let (_, _, events, gauges) = run_broadcast_observed(
            System::Acuerdo,
            3,
            64,
            8,
            7,
            RunSpec::quick(System::Acuerdo),
            Observe {
                traced: true,
                sample_every: Some(SAMPLE_EVERY),
                scheduler: k,
                ..Observe::default()
            },
        );
        chrome_trace_json_full(&events, &gauges)
    };
    let calendar = trace(SchedKind::Calendar);
    assert!(
        calendar == trace(SchedKind::Heap),
        "schedulers diverged at trace-event granularity"
    );
    assert!(calendar.len() > 1024, "traced run produced no timeline");
}
