//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the narrow API slice it actually uses: [`SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, the same generator family real
//! `rand 0.9` uses for its small RNG), [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`]. Determinism per seed is the
//! only property the simulator relies on; the exact stream does not need to
//! match upstream `rand`.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface — the subset of `rand::Rng` this workspace calls.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full range for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable by [`Rng::random`].
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: Rng>(rng: &mut R, lo: u64, hi_incl: u64) -> u64 {
    debug_assert!(lo <= hi_incl);
    let span = hi_incl - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    // Rejection sampling to avoid modulo bias.
    let width = span + 1;
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return lo + v % width;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.random_range(5usize..8);
            assert!((5..8).contains(&w));
        }
        // Degenerate inclusive range.
        assert_eq!(r.random_range(3u64..=3), 3);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[r.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket {b}");
        }
    }
}
