//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the unbounded MPSC channel the threaded
//! runner uses as its "NIC". Backed by `std::sync::mpsc`, which offers the
//! same FIFO-per-sender and blocking `recv_timeout` semantics at the small
//! scales the examples run at.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error: the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send a message; fails only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        h.join().unwrap();
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
