//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range / `any` /
//! `Just` / `prop_oneof!` / `prop::collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test seed so failures are reproducible; there is no
//! shrinking — the failing arguments are printed verbatim instead.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed; the run aborts with this message.
        Fail(String),
        /// The case was rejected by `prop_assume!`; another case is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Result type of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Deterministic generator driving case construction (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (e.g. the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi]` (inclusive).
        pub fn below(&mut self, lo: u64, hi_incl: u64) -> u64 {
            debug_assert!(lo <= hi_incl);
            let span = hi_incl - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            let width = span + 1;
            let zone = u64::MAX - (u64::MAX - width + 1) % width;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return lo + v % width;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Box a strategy (used by `prop_oneof!` for a homogeneous list).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Build from a non-empty alternative list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.options.len() as u64 - 1) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Types with a default "any value" strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The unconstrained strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.below(self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.below(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi_excl: usize,
    }

    /// `vec(element_strategy, len_range)` — lengths drawn from `len_range`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            elem,
            lo: len.start,
            hi_excl: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.lo as u64, self.hi_excl as u64 - 1) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Alias module so `prop::collection::vec(..)` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ..) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    #[allow(clippy::redundant_closure_call, unused_mut)]
                    let mut case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    case()
                };
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}\n  args: {:#?}",
                            stringify!($name),
                            passed,
                            msg,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        }
    )*};
}

/// Reject the current case unless `cond` holds (draws a fresh case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0usize..=4usize.pow(2) / 4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_and_just(p in prop_oneof![Just(1usize), Just(10), Just(100)]) {
            prop_assert!(p == 1 || p == 10 || p == 100);
        }

        #[test]
        fn assume_rejects_halves(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn question_mark_works(x in 1u8..5) {
            fn helper(v: u8) -> Result<(), TestCaseError> {
                if v == 0 {
                    return Err(TestCaseError::fail("zero"));
                }
                Ok(())
            }
            helper(x)?;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(false, "forced failure {}", x);
            }
        }
        always_fails();
    }
}
