//! Offline stand-in for the `criterion` crate.
//!
//! Provides the [`Criterion`] / [`criterion_group!`] / [`criterion_main!`]
//! surface the bench targets use. Instead of criterion's statistical
//! machinery, each benchmark runs a short warm-up followed by a fixed batch
//! of timed iterations and prints the mean wall time — enough to compare
//! runs by eye and to keep `cargo bench` (and `cargo test --benches`)
//! compiling and running without network access.

use std::time::{Duration, Instant};

/// Drives closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Time `f` over a fixed iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        for _ in 0..self.iters.min(3) {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total = start.elapsed();
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration batch size for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// End the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters: iters.max(1),
        total: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.mean();
    println!(
        "bench {name:<50} {:>12.3} us/iter",
        mean.as_secs_f64() * 1e6
    );
}

/// Re-export of the standard black box for parity with criterion's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        let mut ran = 0u64;
        g.bench_function("inner", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 4);
    }
}
