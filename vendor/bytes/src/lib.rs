//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the `bytes 1.x` API this workspace uses:
//! cheaply-cloneable immutable [`Bytes`] (refcounted buffer + view window),
//! growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the frame codecs call. Semantics match upstream
//! for the covered surface; `from_static` copies instead of borrowing, which
//! only costs memory, not correctness.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice (copied in this stand-in).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves share the underlying allocation.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` onward; `self` keeps the
    /// prefix. Both halves share the underlying allocation.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// A sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&n) => n,
            Excluded(&n) => n + 1,
            Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Included(&n) => n + 1,
            Excluded(&n) => n,
            Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s)
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (little-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance past them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.as_slice()[..dst.len()]);
        self.start += dst.len();
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (little-endian accessors).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_bytesmut() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"tail");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u16_le(), 0x1234);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.as_ref(), b"tail");
    }

    #[test]
    fn split_to_shares_allocation() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(b.as_ref(), b" world");
        let tail = b.split_off(1);
        assert_eq!(b.as_ref(), b" ");
        assert_eq!(tail.as_ref(), b"world");
    }

    #[test]
    fn slice_and_eq_and_hash() {
        use std::collections::HashSet;
        let b = Bytes::from(b"abcdef".to_vec());
        assert_eq!(b.slice(1..3).as_ref(), b"bc");
        assert_eq!(b.slice(..).as_ref(), b"abcdef");
        let mut set = HashSet::new();
        set.insert(Bytes::from_static(b"abc"));
        assert!(set.contains(&Bytes::copy_from_slice(b"abc")));
    }

    #[test]
    fn buf_for_slice() {
        let mut s: &[u8] = &[1, 0, 0, 0, 9];
        assert_eq!(s.get_u32_le(), 1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.get_u8(), 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.get_u32_le();
    }
}
